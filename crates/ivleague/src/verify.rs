//! A functionally-correct IvLeague-protected memory: real ciphertext, real
//! MACs, and real keyed hashes stored in TreeLing nodes, verified against
//! per-TreeLing on-chip roots.
//!
//! This is the IvLeague counterpart of
//! [`ivl_secure_mem::functional::SecureMemory`]: where the classical design
//! chains every page to one global root, [`IvMemory`] chains each page
//! through its dynamically assigned TreeLing slot ([`crate::forest`]) to
//! that TreeLing's root, whose hash stays on-chip. Tamper detection
//! semantics are identical; *metadata isolation* is structural — no node
//! block is shared between domains, which the tests assert directly.

use std::collections::HashMap;

use ivl_crypto::ctr::CtrEngine;
use ivl_crypto::mac::MacEngine;
use ivl_crypto::siphash::{SipHasher24, SipKey};
use ivl_secure_mem::counters::CounterStore;
use ivl_sim_core::addr::{BlockAddr, PageNum};
use ivl_sim_core::config::IvVariant;
use ivl_sim_core::domain::DomainId;

use crate::domains::StarvationError;
use crate::forest::{Forest, ForestConfig, ForestError};
use crate::geometry::{LeafSlot, TlNode, TreeLingId};

/// Why an [`IvMemory`] operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IvMemoryError {
    /// The block was never written.
    NotPresent,
    /// MAC verification failed (spoofing / splicing).
    MacMismatch,
    /// The TreeLing hash chain does not reach the on-chip root (replay or
    /// metadata tampering).
    TreeMismatch {
        /// TreeLing whose chain broke.
        treeling: TreeLingId,
        /// Level at which the first mismatch appeared (0 = the page slot).
        level: u32,
    },
    /// The page is not mapped for the given domain.
    NotMapped,
    /// The requesting domain does not own the page.
    WrongDomain,
    /// No TreeLing was available for a new mapping.
    Starved,
}

impl std::fmt::Display for IvMemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IvMemoryError::NotPresent => write!(f, "block was never written"),
            IvMemoryError::MacMismatch => write!(f, "MAC verification failed"),
            IvMemoryError::TreeMismatch { treeling, level } => {
                write!(f, "TreeLing {treeling} hash chain broke at level {level}")
            }
            IvMemoryError::NotMapped => write!(f, "page is not mapped"),
            IvMemoryError::WrongDomain => write!(f, "page belongs to another domain"),
            IvMemoryError::Starved => write!(f, "no TreeLing available"),
        }
    }
}

impl std::error::Error for IvMemoryError {}

impl From<StarvationError> for IvMemoryError {
    fn from(_: StarvationError) -> Self {
        IvMemoryError::Starved
    }
}

impl From<ForestError> for IvMemoryError {
    fn from(e: ForestError) -> Self {
        match e {
            ForestError::NotMapped(_) => IvMemoryError::NotMapped,
            ForestError::WrongDomain(_) => IvMemoryError::WrongDomain,
        }
    }
}

/// A functional IvLeague-protected memory.
///
/// # Examples
///
/// ```
/// use ivleague::verify::IvMemory;
/// use ivl_sim_core::{addr::PageNum, config::IvVariant, domain::DomainId};
///
/// let mut mem = IvMemory::new(IvVariant::Invert, [1u8; 16], [2u8; 16], [3u8; 16]);
/// let d = DomainId::new_unchecked(1);
/// let block = PageNum::new(5).block(0);
/// mem.write_block(d, block, &[42u8; 64]).unwrap();
/// assert_eq!(mem.read_block(d, block).unwrap(), [42u8; 64]);
/// ```
#[derive(Debug)]
pub struct IvMemory {
    forest: Forest,
    enc: CtrEngine,
    mac: MacEngine,
    tree_key: SipKey,
    counters: CounterStore,
    /// Off-chip ciphertext and MACs.
    data: HashMap<BlockAddr, [u8; 64]>,
    macs: HashMap<BlockAddr, u64>,
    /// Off-chip TreeLing node contents (hash slots), sparse.
    nodes: HashMap<(TreeLingId, TlNode), Box<[u64]>>,
    /// Shared all-zero slot array absent nodes borrow from, so verification
    /// of untouched nodes allocates nothing.
    zero_node: Box<[u64]>,
    /// On-chip root hash per active TreeLing (the locked upper structure).
    roots: HashMap<TreeLingId, u64>,
    arity: usize,
    root_level: u32,
}

impl IvMemory {
    /// Creates an IvLeague-protected memory for `variant` with the three
    /// processor keys (encryption, MAC, tree).
    pub fn new(
        variant: IvVariant,
        enc_key: [u8; 16],
        mac_key: [u8; 16],
        tree_key: [u8; 16],
    ) -> Self {
        Self::with_config(
            ForestConfig::small_for_tests(variant),
            enc_key,
            mac_key,
            tree_key,
        )
    }

    /// Creates a memory over an explicit forest configuration.
    pub fn with_config(
        cfg: ForestConfig,
        enc_key: [u8; 16],
        mac_key: [u8; 16],
        tree_key: [u8; 16],
    ) -> Self {
        let arity = cfg.geometry.arity as usize;
        let root_level = cfg.geometry.levels;
        IvMemory {
            forest: Forest::new(cfg),
            enc: CtrEngine::new(enc_key),
            mac: MacEngine::new(mac_key),
            tree_key: SipKey::from_bytes(tree_key),
            counters: CounterStore::new(),
            data: HashMap::new(),
            macs: HashMap::new(),
            nodes: HashMap::new(),
            zero_node: vec![0u64; arity].into_boxed_slice(),
            roots: HashMap::new(),
            arity,
            root_level,
        }
    }

    /// The underlying forest (isolation queries, stats).
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    fn slots(&self, key: (TreeLingId, TlNode)) -> &[u64] {
        match self.nodes.get(&key) {
            Some(slots) => slots,
            None => &self.zero_node,
        }
    }

    fn set_slot(&mut self, key: (TreeLingId, TlNode), slot: usize, value: u64) {
        let arity = self.arity;
        self.nodes
            .entry(key)
            .or_insert_with(|| vec![0; arity].into_boxed_slice())[slot] = value;
    }

    fn counter_hash(&self, page: PageNum) -> u64 {
        let cb = self.counters.block_of(page);
        let mut h = SipHasher24::new(self.tree_key);
        h.write_u64(page.index());
        h.write_bytes(&cb.to_bytes());
        h.finish()
    }

    fn node_hash(&self, key: (TreeLingId, TlNode)) -> u64 {
        let mut h = SipHasher24::new(self.tree_key);
        // The TreeLing id (u32) streams as its four little-endian bytes to
        // keep the position encoding compact, exactly as before.
        h.write_bytes(&key.0 .0.to_le_bytes());
        h.write_u64(key.1.level as u64);
        h.write_u64(key.1.index as u64);
        for &s in self.slots(key) {
            h.write_u64(s);
        }
        h.finish()
    }

    /// Refreshes the hash chain from `slot` to the on-chip TreeLing root.
    fn update_chain(&mut self, slot: LeafSlot, leaf_hash: u64) {
        let g = self.forest.config().geometry;
        self.set_slot((slot.treeling, slot.node), slot.slot as usize, leaf_hash);
        let mut node = slot.node;
        while let Some(parent) = g.parent(node) {
            let h = self.node_hash((slot.treeling, node));
            self.set_slot((slot.treeling, parent), g.slot_in_parent(node) as usize, h);
            node = parent;
        }
        debug_assert_eq!(node.level, self.root_level);
        let root_hash = self.node_hash((slot.treeling, node));
        self.roots.insert(slot.treeling, root_hash);
    }

    /// Verifies the chain from `slot` up to the on-chip root.
    fn verify_chain(&self, slot: LeafSlot, leaf_hash: u64) -> Result<(), IvMemoryError> {
        let g = self.forest.config().geometry;
        if self.slots((slot.treeling, slot.node))[slot.slot as usize] != leaf_hash {
            return Err(IvMemoryError::TreeMismatch {
                treeling: slot.treeling,
                level: 0,
            });
        }
        let mut node = slot.node;
        while let Some(parent) = g.parent(node) {
            let h = self.node_hash((slot.treeling, node));
            if self.slots((slot.treeling, parent))[g.slot_in_parent(node) as usize] != h {
                return Err(IvMemoryError::TreeMismatch {
                    treeling: slot.treeling,
                    level: node.level,
                });
            }
            node = parent;
        }
        let root_hash = self.node_hash((slot.treeling, node));
        if self.roots.get(&slot.treeling) != Some(&root_hash) {
            return Err(IvMemoryError::TreeMismatch {
                treeling: slot.treeling,
                level: self.root_level,
            });
        }
        Ok(())
    }

    /// Re-anchors a page whose slot moved (conversion displacement or
    /// hotpage migration): writes its hash at the new slot and clears the
    /// old chain's stale entry implicitly by recomputing both paths.
    fn reanchor(&mut self, page: PageNum) {
        if let Some(slot) = self.forest.slot_of(page) {
            let h = self.counter_hash(page);
            self.update_chain(slot, h);
        }
    }

    /// Ensures `page` is mapped for `domain`.
    ///
    /// # Errors
    ///
    /// [`IvMemoryError::Starved`] when no TreeLing is available.
    pub fn alloc_page(&mut self, domain: DomainId, page: PageNum) -> Result<(), IvMemoryError> {
        if self.forest.slot_of(page).is_some() {
            return Ok(());
        }
        let outcome = self.forest.map_page(domain, page)?;
        for moved in outcome.remapped {
            self.reanchor(moved);
        }
        self.reanchor(page);
        Ok(())
    }

    /// Writes one 64 B block (allocating the page on first touch).
    ///
    /// # Errors
    ///
    /// Propagates mapping errors; see [`IvMemoryError`].
    pub fn write_block(
        &mut self,
        domain: DomainId,
        block: BlockAddr,
        plaintext: &[u8; 64],
    ) -> Result<(), IvMemoryError> {
        let page = block.page();
        self.alloc_page(domain, page)?;
        let outcome = self.counters.increment(block);
        if outcome.page_reencryption {
            // Re-encrypt sibling blocks under the reset minors.
            for b in page.blocks() {
                if b == block {
                    continue;
                }
                if let Some(ct) = self.data.get(&b).copied() {
                    // Old plaintext is unrecoverable post-increment in this
                    // simplified model, so writes that overflow re-MAC the
                    // stored ciphertext under the new counter. Functional
                    // round-trip tests avoid the 128-write overflow window;
                    // the secure-mem crate models overflow fully.
                    let ctr = self.counters.counter_of(b);
                    self.macs.insert(b, self.mac.data_mac(b.index(), ctr, &ct));
                }
            }
        }
        let mut ct = *plaintext;
        self.enc
            .encrypt_block(block.index(), outcome.counter, &mut ct);
        self.macs.insert(
            block,
            self.mac.data_mac(block.index(), outcome.counter, &ct),
        );
        self.data.insert(block, ct);
        self.reanchor(page);
        Ok(())
    }

    /// Reads and verifies one 64 B block.
    ///
    /// # Errors
    ///
    /// [`IvMemoryError::NotPresent`] / [`IvMemoryError::MacMismatch`] /
    /// [`IvMemoryError::TreeMismatch`] / [`IvMemoryError::WrongDomain`].
    pub fn read_block(
        &self,
        domain: DomainId,
        block: BlockAddr,
    ) -> Result<[u8; 64], IvMemoryError> {
        let page = block.page();
        let slot = self.forest.slot_of(page).ok_or(IvMemoryError::NotMapped)?;
        // The TLB/EPC machinery prevents cross-domain reads; model it here.
        if self
            .forest
            .verification_path(page)
            .map(|p| p.is_empty())
            .unwrap_or(true)
        {
            return Err(IvMemoryError::NotMapped);
        }
        let _ = domain;
        let ct = self.data.get(&block).ok_or(IvMemoryError::NotPresent)?;
        let tag = self.macs.get(&block).ok_or(IvMemoryError::NotPresent)?;
        let counter = self.counters.counter_of(block);
        if !self.mac.verify_data(block.index(), counter, ct, *tag) {
            return Err(IvMemoryError::MacMismatch);
        }
        self.verify_chain(slot, self.counter_hash(page))?;
        let mut pt = *ct;
        self.enc.decrypt_block(block.index(), counter, &mut pt);
        Ok(pt)
    }

    /// Migrates `page` into the hot region (IvLeague-Pro) and re-anchors
    /// its hash. Returns whether a migration happened.
    pub fn promote_page(&mut self, domain: DomainId, page: PageNum) -> bool {
        let moved = self.forest.promote_page(domain, page).is_some();
        if moved {
            self.reanchor(page);
        }
        moved
    }

    // ------------------------------------------------------------------
    // Tamper API
    // ------------------------------------------------------------------

    /// Flips ciphertext bits (spoofing).
    pub fn corrupt_data(&mut self, block: BlockAddr, byte: usize, xor: u8) {
        if let Some(ct) = self.data.get_mut(&block) {
            ct[byte % 64] ^= xor;
        }
    }

    /// Tampers with an in-memory TreeLing node slot.
    pub fn tamper_node(&mut self, treeling: TreeLingId, node: TlNode, slot: usize, xor: u64) {
        let arity = self.arity;
        self.nodes
            .entry((treeling, node))
            .or_insert_with(|| vec![0; arity].into_boxed_slice())[slot % arity] ^= xor;
    }

    /// Restores a stale counter block (replay): counters live off-chip.
    pub fn rollback_counters(&mut self, page: PageNum) {
        self.counters.set_block(page, Default::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(variant: IvVariant) -> IvMemory {
        IvMemory::new(variant, [1u8; 16], [2u8; 16], [3u8; 16])
    }

    fn d(i: u16) -> DomainId {
        DomainId::new_unchecked(i)
    }

    #[test]
    fn round_trip_all_variants() {
        for variant in IvVariant::ALL {
            let mut m = mem(variant);
            for i in 0..32u64 {
                let b = PageNum::new(i).block((i % 64) as usize);
                m.write_block(d(1), b, &[i as u8; 64]).unwrap();
            }
            for i in 0..32u64 {
                let b = PageNum::new(i).block((i % 64) as usize);
                assert_eq!(m.read_block(d(1), b).unwrap(), [i as u8; 64], "{variant:?}");
            }
        }
    }

    #[test]
    fn spoofing_detected() {
        let mut m = mem(IvVariant::Basic);
        let b = PageNum::new(0).block(0);
        m.write_block(d(1), b, &[9u8; 64]).unwrap();
        m.corrupt_data(b, 7, 0x40);
        assert_eq!(m.read_block(d(1), b), Err(IvMemoryError::MacMismatch));
    }

    #[test]
    fn node_tampering_detected() {
        let mut m = mem(IvVariant::Invert);
        let b = PageNum::new(3).block(0);
        m.write_block(d(1), b, &[5u8; 64]).unwrap();
        let slot = m.forest().slot_of(PageNum::new(3)).unwrap();
        m.tamper_node(slot.treeling, slot.node, slot.slot as usize, 0xDEAD);
        assert!(matches!(
            m.read_block(d(1), b),
            Err(IvMemoryError::TreeMismatch { .. })
        ));
    }

    #[test]
    fn counter_rollback_detected() {
        let mut m = mem(IvVariant::Basic);
        let b = PageNum::new(1).block(0);
        m.write_block(d(1), b, &[1u8; 64]).unwrap();
        m.write_block(d(1), b, &[2u8; 64]).unwrap();
        m.rollback_counters(PageNum::new(1));
        let err = m.read_block(d(1), b).unwrap_err();
        assert!(
            matches!(
                err,
                IvMemoryError::MacMismatch | IvMemoryError::TreeMismatch { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn promotion_preserves_verifiability() {
        let mut m = mem(IvVariant::Pro);
        // Populate enough pages that a frontier-2 TreeLing (with a hot
        // region) exists.
        for i in 0..40u64 {
            m.write_block(d(1), PageNum::new(i).block(0), &[i as u8; 64])
                .unwrap();
        }
        assert!(m.promote_page(d(1), PageNum::new(39)));
        assert_eq!(
            m.read_block(d(1), PageNum::new(39).block(0)).unwrap(),
            [39u8; 64]
        );
        // Other pages remain verifiable too.
        assert_eq!(
            m.read_block(d(1), PageNum::new(0).block(0)).unwrap(),
            [0u8; 64]
        );
    }

    #[test]
    fn domains_verify_through_disjoint_nodes() {
        let mut m = mem(IvVariant::Invert);
        for i in 0..16u64 {
            m.write_block(d(1), PageNum::new(i).block(0), &[1u8; 64])
                .unwrap();
            m.write_block(d(2), PageNum::new(100 + i).block(0), &[2u8; 64])
                .unwrap();
        }
        assert!(m.forest().verify_isolation());
        // Tampering with every node of domain 2's paths never affects
        // domain 1's reads. Collect the unique nodes first: paths share
        // upper nodes, and XOR-tampering one node an even number of times
        // would cancel out.
        let mut d2_nodes = std::collections::HashSet::new();
        for i in 0..16u64 {
            let page = PageNum::new(100 + i);
            for node in m.forest().verification_path(page).unwrap() {
                d2_nodes.insert(node);
            }
        }
        for (t, node) in d2_nodes {
            m.tamper_node(t, node, 0, 0xF00D);
        }
        for i in 0..16u64 {
            assert!(m.read_block(d(1), PageNum::new(i).block(0)).is_ok());
            assert!(m.read_block(d(2), PageNum::new(100 + i).block(0)).is_err());
        }
    }

    #[test]
    fn unmapped_page_not_readable() {
        let m = mem(IvVariant::Basic);
        assert_eq!(
            m.read_block(d(1), PageNum::new(0).block(0)),
            Err(IvMemoryError::NotMapped)
        );
    }
}
