//! IvLeague-Pro's hotpage access-frequency tracker (paper §VII-B,
//! Figure 14a).
//!
//! A small per-domain table in the memory controller counts page accesses:
//!
//! * a tracked page's counter saturates at the configured bit width;
//! * an untracked page replaces the entry with the **smallest counter**;
//! * crossing the frequency threshold **promotes** the page to the hot
//!   region of its TreeLing;
//! * counters clear on a fixed interval, so stale hotpages decay and are
//!   eventually evicted, which **demotes** them back to the regular region.

use ivl_sim_core::addr::PageNum;

/// Promotion/demotion event emitted by the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotEvent {
    /// The page crossed the hot threshold: migrate it into the hot region.
    Promote(PageNum),
    /// The page left the tracker while hot: migrate it back.
    Demote(PageNum),
}

/// Events from one recorded access, stored inline. A single access produces
/// at most a promotion (of the accessed page) plus a demotion (of an evicted
/// entry), so the per-access hot path never allocates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotEvents {
    buf: [Option<HotEvent>; 2],
}

impl HotEvents {
    fn push(&mut self, e: HotEvent) {
        if self.buf[0].is_none() {
            self.buf[0] = Some(e);
        } else {
            debug_assert!(self.buf[1].is_none(), "at most two events per access");
            self.buf[1] = Some(e);
        }
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.buf.iter().filter(|e| e.is_some()).count()
    }

    /// Whether the access produced no events.
    pub fn is_empty(&self) -> bool {
        self.buf[0].is_none()
    }

    /// Whether `event` is among the recorded events.
    pub fn contains(&self, event: &HotEvent) -> bool {
        self.buf.iter().flatten().any(|e| e == event)
    }

    /// Iterates over the recorded events.
    pub fn iter(&self) -> impl Iterator<Item = &HotEvent> {
        self.buf.iter().flatten()
    }
}

impl IntoIterator for HotEvents {
    type Item = HotEvent;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<HotEvent>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().flatten()
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    page: PageNum,
    counter: u32,
    promoted: bool,
    /// Insertion sequence, used to break replacement ties toward the
    /// oldest entry so striding working sets churn fairly.
    seq: u64,
}

/// The access-frequency tracking table.
///
/// # Examples
///
/// ```
/// use ivleague::tracker::{HotEvent, HotpageTracker};
/// use ivl_sim_core::addr::PageNum;
///
/// let mut t = HotpageTracker::new(4, 8, 3, 1_000);
/// let p = PageNum::new(42);
/// assert!(t.record(p).is_empty());
/// assert!(t.record(p).is_empty());
/// assert!(t.record(p).contains(&HotEvent::Promote(p))); // third access
/// ```
#[derive(Debug, Clone)]
pub struct HotpageTracker {
    entries: Vec<Entry>,
    capacity: usize,
    counter_max: u32,
    threshold: u32,
    clear_interval: u64,
    accesses_since_clear: u64,
    next_seq: u64,
}

impl HotpageTracker {
    /// Creates a tracker with `capacity` entries, `counter_bits`-wide
    /// counters, promotion `threshold`, and a decay `clear_interval`
    /// measured in recorded accesses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `threshold == 0` or `counter_bits` is not
    /// in `1..=31`.
    pub fn new(capacity: usize, counter_bits: u32, threshold: u32, clear_interval: u64) -> Self {
        assert!(capacity > 0);
        assert!((1..=31).contains(&counter_bits));
        assert!(threshold > 0);
        HotpageTracker {
            entries: Vec::with_capacity(capacity),
            capacity,
            counter_max: (1 << counter_bits) - 1,
            threshold,
            clear_interval: clear_interval.max(1),
            accesses_since_clear: 0,
            next_seq: 0,
        }
    }

    /// Records an access to `page`, returning any promotion/demotion events.
    pub fn record(&mut self, page: PageNum) -> HotEvents {
        let mut events = HotEvents::default();
        self.accesses_since_clear += 1;
        if self.accesses_since_clear >= self.clear_interval {
            self.accesses_since_clear = 0;
            for e in &mut self.entries {
                e.counter = 0;
            }
        }

        // One scan serves both the lookup and the replacement-victim
        // search (smallest counter, ties toward the oldest entry): a hit
        // short-circuits, a miss already knows its victim. Strict `<` keeps
        // the first minimum, matching what `min_by_key` selected.
        let mut hit_idx = None;
        let mut victim_idx = 0usize;
        let mut victim_key = (u32::MAX, u64::MAX);
        for (i, e) in self.entries.iter().enumerate() {
            if e.page == page {
                hit_idx = Some(i);
                break;
            }
            let key = (e.counter, e.seq);
            if key < victim_key {
                victim_key = key;
                victim_idx = i;
            }
        }

        if let Some(i) = hit_idx {
            let e = &mut self.entries[i];
            e.counter = (e.counter + 1).min(self.counter_max);
            if !e.promoted && e.counter >= self.threshold {
                e.promoted = true;
                events.push(HotEvent::Promote(page));
            }
            return events;
        }

        self.next_seq += 1;
        let mut new_entry = Entry {
            page,
            counter: 1,
            promoted: false,
            seq: self.next_seq,
        };
        if new_entry.counter >= self.threshold {
            new_entry.promoted = true;
            events.push(HotEvent::Promote(page));
        }
        if self.entries.len() < self.capacity {
            self.entries.push(new_entry);
        } else {
            // Replace the single-scan victim computed above.
            let idx = victim_idx;
            let victim = self.entries[idx];
            if victim.promoted {
                events.push(HotEvent::Demote(victim.page));
            }
            self.entries[idx] = new_entry;
        }
        events
    }

    /// Whether `page` is currently marked hot.
    pub fn is_hot(&self, page: PageNum) -> bool {
        self.entries.iter().any(|e| e.page == page && e.promoted)
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tracker is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageNum {
        PageNum::new(i)
    }

    #[test]
    fn promotion_fires_once() {
        let mut t = HotpageTracker::new(4, 8, 2, 1000);
        assert!(t.record(p(1)).is_empty());
        let ev = t.record(p(1));
        assert_eq!(ev.len(), 1);
        assert!(ev.contains(&HotEvent::Promote(p(1))));
        assert!(t.record(p(1)).is_empty(), "no duplicate promotions");
        assert!(t.is_hot(p(1)));
    }

    #[test]
    fn replacement_evicts_smallest_counter() {
        let mut t = HotpageTracker::new(2, 8, 100, 1000);
        t.record(p(1));
        t.record(p(1));
        t.record(p(2)); // counter 1 — smallest
        t.record(p(3)); // evicts p(2)
        assert_eq!(t.len(), 2);
        t.record(p(1));
        assert!(!t.is_hot(p(2)));
    }

    #[test]
    fn demotion_on_eviction_of_promoted_page() {
        let mut t = HotpageTracker::new(1, 8, 1, 1000);
        let ev = t.record(p(1));
        assert_eq!(ev.len(), 1);
        assert!(ev.contains(&HotEvent::Promote(p(1))));
        let ev = t.record(p(2));
        assert!(ev.contains(&HotEvent::Demote(p(1))));
    }

    #[test]
    fn counters_saturate() {
        let mut t = HotpageTracker::new(1, 2, 100, 1_000_000);
        for _ in 0..10 {
            t.record(p(1));
        }
        // counter_max for 2 bits is 3; no panic and still tracked.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn interval_clear_resets_counters() {
        let mut t = HotpageTracker::new(2, 8, 4, 5);
        for _ in 0..3 {
            t.record(p(1)); // counter 3, below threshold 4
        }
        t.record(p(2)); // 4th access
        t.record(p(2)); // 5th access triggers clear first, then counts
                        // p(1)'s counter was cleared; three more accesses stay below the
                        // threshold again (clear interval keeps resetting long streaks of
                        // slow pages).
        let ev = t.record(p(1));
        assert!(ev.is_empty());
    }

    #[test]
    fn striding_working_set_larger_than_table_promotes_nothing() {
        // Paper §VII-B: efficacy requires hotpage striping < n.
        let mut t = HotpageTracker::new(8, 8, 4, 1_000_000);
        for round in 0..20 {
            for i in 0..16 {
                let ev = t.record(p(i));
                for e in ev {
                    assert!(
                        !matches!(e, HotEvent::Promote(_)),
                        "unexpected promotion in round {round}"
                    );
                }
            }
        }
    }
}
