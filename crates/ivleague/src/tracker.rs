//! IvLeague-Pro's hotpage access-frequency tracker (paper §VII-B,
//! Figure 14a).
//!
//! A small per-domain table in the memory controller counts page accesses:
//!
//! * a tracked page's counter saturates at the configured bit width;
//! * an untracked page replaces the entry with the **smallest counter**;
//! * crossing the frequency threshold **promotes** the page to the hot
//!   region of its TreeLing;
//! * counters clear on a fixed interval, so stale hotpages decay and are
//!   eventually evicted, which **demotes** them back to the regular region.

use ivl_sim_core::addr::PageNum;

/// Promotion/demotion event emitted by the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotEvent {
    /// The page crossed the hot threshold: migrate it into the hot region.
    Promote(PageNum),
    /// The page left the tracker while hot: migrate it back.
    Demote(PageNum),
}

/// Events from one recorded access, stored inline. A single access produces
/// at most a promotion (of the accessed page) plus a demotion (of an evicted
/// entry), so the per-access hot path never allocates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotEvents {
    buf: [Option<HotEvent>; 2],
}

impl HotEvents {
    fn push(&mut self, e: HotEvent) {
        if self.buf[0].is_none() {
            self.buf[0] = Some(e);
        } else {
            debug_assert!(self.buf[1].is_none(), "at most two events per access");
            self.buf[1] = Some(e);
        }
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.buf.iter().filter(|e| e.is_some()).count()
    }

    /// Whether the access produced no events.
    pub fn is_empty(&self) -> bool {
        self.buf[0].is_none()
    }

    /// Whether `event` is among the recorded events.
    pub fn contains(&self, event: &HotEvent) -> bool {
        self.buf.iter().flatten().any(|e| e == event)
    }

    /// Iterates over the recorded events.
    pub fn iter(&self) -> impl Iterator<Item = &HotEvent> {
        self.buf.iter().flatten()
    }
}

impl IntoIterator for HotEvents {
    type Item = HotEvent;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<HotEvent>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().flatten()
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    page: PageNum,
    counter: u32,
    promoted: bool,
    /// Insertion sequence, used to break replacement ties toward the
    /// oldest entry so striding working sets churn fairly.
    seq: u64,
}

/// The access-frequency tracking table.
///
/// # Examples
///
/// ```
/// use ivleague::tracker::{HotEvent, HotpageTracker};
/// use ivl_sim_core::addr::PageNum;
///
/// let mut t = HotpageTracker::new(4, 8, 3, 1_000);
/// let p = PageNum::new(42);
/// assert!(t.record(p).is_empty());
/// assert!(t.record(p).is_empty());
/// assert!(t.record(p).contains(&HotEvent::Promote(p))); // third access
/// ```
/// Minimal open-addressed page→entry index: linear probing with
/// backward-shift deletion, slots holding `entry_index + 1` (0 = empty).
/// Keys are not duplicated here — a probe compares against
/// `entries[idx].page` — so the whole table for a 128-entry tracker is one
/// KiB and stays L1-resident. Sized to ≤50% load, which keeps probe chains
/// short and makes backward-shift deletion cheap.
#[derive(Debug, Clone)]
struct PageIndex {
    slots: Box<[u32]>,
    mask: usize,
}

impl PageIndex {
    fn new(capacity: usize) -> Self {
        let len = (capacity * 2).next_power_of_two().max(4);
        PageIndex {
            slots: vec![0u32; len].into_boxed_slice(),
            mask: len - 1,
        }
    }

    /// Fibonacci-hash home bucket; multiplicative mixing is enough for the
    /// short ≤50%-load probe chains this table keeps.
    #[inline]
    fn bucket(&self, page: PageNum) -> usize {
        let h = page.index().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    #[inline]
    fn get(&self, page: PageNum, entries: &[Entry]) -> Option<u32> {
        let mut i = self.bucket(page);
        loop {
            let s = self.slots[i];
            if s == 0 {
                return None;
            }
            if entries[(s - 1) as usize].page == page {
                return Some(s - 1);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts a not-present page; the caller guarantees no duplicate.
    fn insert(&mut self, page: PageNum, idx: u32) {
        let mut i = self.bucket(page);
        while self.slots[i] != 0 {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = idx + 1;
    }

    /// Removes a present page by backward-shifting the probe chain, so no
    /// tombstones accumulate and `get` can stop at the first empty slot.
    fn remove(&mut self, page: PageNum, entries: &[Entry]) {
        let mut i = self.bucket(page);
        while {
            let s = self.slots[i];
            debug_assert_ne!(s, 0, "removing an absent page");
            entries[(s - 1) as usize].page != page
        } {
            i = (i + 1) & self.mask;
        }
        let mut j = i;
        'shift: loop {
            self.slots[i] = 0;
            loop {
                j = (j + 1) & self.mask;
                let s = self.slots[j];
                if s == 0 {
                    break 'shift;
                }
                let home = self.bucket(entries[(s - 1) as usize].page);
                // An element whose home lies cyclically in (i, j] is
                // already as close to home as it can get; otherwise it
                // slides back into the vacated slot.
                let stays = if i <= j {
                    i < home && home <= j
                } else {
                    home <= j || home > i
                };
                if !stays {
                    self.slots[i] = s;
                    i = j;
                    break;
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
pub struct HotpageTracker {
    entries: Vec<Entry>,
    /// O(1) hit lookup: page → index into `entries`. The table used to be
    /// scanned linearly on every access, which put an O(capacity) walk on
    /// the Pro data-access critical path; the index keeps hits
    /// constant-time and lets misses skip straight to victim selection.
    index: PageIndex,
    /// Tournament (segment) tree of `(counter, seq)` keys over the entry
    /// slots: `tree[leaf_base + i]` mirrors entry `i`'s live key and every
    /// internal node holds the minimum of its children, so the root names
    /// the entry the old first-minimum scan selected (`seq` values are
    /// unique, making the minimum unambiguous). A counter bump, slot reuse,
    /// or interval clear refreshes one leaf-to-root path — a handful of
    /// branch-predictable array steps, with no stale keys to churn through.
    tree: Vec<(u32, u64, u32)>,
    /// First leaf index in `tree` (`capacity` rounded up to a power of two).
    leaf_base: usize,
    capacity: usize,
    counter_max: u32,
    threshold: u32,
    clear_interval: u64,
    accesses_since_clear: u64,
    next_seq: u64,
}

impl HotpageTracker {
    /// Creates a tracker with `capacity` entries, `counter_bits`-wide
    /// counters, promotion `threshold`, and a decay `clear_interval`
    /// measured in recorded accesses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `threshold == 0` or `counter_bits` is not
    /// in `1..=31`.
    pub fn new(capacity: usize, counter_bits: u32, threshold: u32, clear_interval: u64) -> Self {
        assert!(capacity > 0);
        assert!((1..=31).contains(&counter_bits));
        assert!(threshold > 0);
        let leaf_base = capacity.next_power_of_two();
        HotpageTracker {
            entries: Vec::with_capacity(capacity),
            index: PageIndex::new(capacity),
            // Empty leaves hold the maximal key; victim selection only runs
            // on a full table, so a sentinel never wins the tournament.
            tree: vec![(u32::MAX, u64::MAX, u32::MAX); 2 * leaf_base],
            leaf_base,
            capacity,
            counter_max: (1 << counter_bits) - 1,
            threshold,
            clear_interval: clear_interval.max(1),
            accesses_since_clear: 0,
            next_seq: 0,
        }
    }

    /// Publishes entry `idx`'s live `(counter, seq)` key and refreshes the
    /// tournament minima on its leaf-to-root path.
    #[inline]
    fn update_key(&mut self, idx: u32, counter: u32, seq: u64) {
        let mut i = self.leaf_base + idx as usize;
        self.tree[i] = (counter, seq, idx);
        while i > 1 {
            i >>= 1;
            self.tree[i] = self.tree[2 * i].min(self.tree[2 * i + 1]);
        }
    }

    /// Records an access to `page`, returning any promotion/demotion events.
    pub fn record(&mut self, page: PageNum) -> HotEvents {
        let mut events = HotEvents::default();
        self.accesses_since_clear += 1;
        if self.accesses_since_clear >= self.clear_interval {
            self.accesses_since_clear = 0;
            // Reset every counter, then rebuild the tournament bottom-up in
            // one pass rather than replaying per-leaf updates.
            for (i, e) in self.entries.iter_mut().enumerate() {
                e.counter = 0;
                self.tree[self.leaf_base + i] = (0, e.seq, i as u32);
            }
            for i in (1..self.leaf_base).rev() {
                self.tree[i] = self.tree[2 * i].min(self.tree[2 * i + 1]);
            }
        }

        if let Some(i) = self.index.get(page, &self.entries) {
            let e = &mut self.entries[i as usize];
            let bumped = (e.counter + 1).min(self.counter_max);
            if bumped != e.counter {
                e.counter = bumped;
                let seq = e.seq;
                self.update_key(i, bumped, seq);
            }
            let e = &mut self.entries[i as usize];
            if !e.promoted && e.counter >= self.threshold {
                e.promoted = true;
                events.push(HotEvent::Promote(page));
            }
            return events;
        }

        self.next_seq += 1;
        let mut new_entry = Entry {
            page,
            counter: 1,
            promoted: false,
            seq: self.next_seq,
        };
        if new_entry.counter >= self.threshold {
            new_entry.promoted = true;
            events.push(HotEvent::Promote(page));
        }
        let idx = if self.entries.len() < self.capacity {
            let idx = self.entries.len() as u32;
            self.entries.push(new_entry);
            idx
        } else {
            // Replace the smallest `(counter, seq)` — the root of the
            // tournament, which is exactly the entry the pre-index
            // first-minimum scan picked, since `seq` values are unique.
            let idx = self.tree[1].2;
            let victim = self.entries[idx as usize];
            if victim.promoted {
                events.push(HotEvent::Demote(victim.page));
            }
            self.index.remove(victim.page, &self.entries);
            self.entries[idx as usize] = new_entry;
            idx
        };
        self.update_key(idx, 1, self.next_seq);
        self.index.insert(page, idx);
        events
    }

    /// Whether `page` is currently marked hot.
    pub fn is_hot(&self, page: PageNum) -> bool {
        self.entries.iter().any(|e| e.page == page && e.promoted)
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tracker is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageNum {
        PageNum::new(i)
    }

    /// The pre-index implementation, kept verbatim as a differential
    /// oracle: one linear scan serves both the hit lookup and the
    /// replacement-victim search (smallest counter, ties toward the oldest
    /// entry; strict `<` keeps the first minimum).
    mod reference {
        use super::super::{Entry, HotEvent, HotEvents};
        use ivl_sim_core::addr::PageNum;

        pub struct RefTracker {
            entries: Vec<Entry>,
            capacity: usize,
            counter_max: u32,
            threshold: u32,
            clear_interval: u64,
            accesses_since_clear: u64,
            next_seq: u64,
        }

        impl RefTracker {
            pub fn new(
                capacity: usize,
                counter_bits: u32,
                threshold: u32,
                clear_interval: u64,
            ) -> Self {
                RefTracker {
                    entries: Vec::with_capacity(capacity),
                    capacity,
                    counter_max: (1 << counter_bits) - 1,
                    threshold,
                    clear_interval: clear_interval.max(1),
                    accesses_since_clear: 0,
                    next_seq: 0,
                }
            }

            pub fn record(&mut self, page: PageNum) -> HotEvents {
                let mut events = HotEvents::default();
                self.accesses_since_clear += 1;
                if self.accesses_since_clear >= self.clear_interval {
                    self.accesses_since_clear = 0;
                    for e in &mut self.entries {
                        e.counter = 0;
                    }
                }
                let mut hit_idx = None;
                let mut victim_idx = 0usize;
                let mut victim_key = (u32::MAX, u64::MAX);
                for (i, e) in self.entries.iter().enumerate() {
                    if e.page == page {
                        hit_idx = Some(i);
                        break;
                    }
                    let key = (e.counter, e.seq);
                    if key < victim_key {
                        victim_key = key;
                        victim_idx = i;
                    }
                }
                if let Some(i) = hit_idx {
                    let e = &mut self.entries[i];
                    e.counter = (e.counter + 1).min(self.counter_max);
                    if !e.promoted && e.counter >= self.threshold {
                        e.promoted = true;
                        events.push(HotEvent::Promote(page));
                    }
                    return events;
                }
                self.next_seq += 1;
                let mut new_entry = Entry {
                    page,
                    counter: 1,
                    promoted: false,
                    seq: self.next_seq,
                };
                if new_entry.counter >= self.threshold {
                    new_entry.promoted = true;
                    events.push(HotEvent::Promote(page));
                }
                if self.entries.len() < self.capacity {
                    self.entries.push(new_entry);
                } else {
                    let idx = victim_idx;
                    let victim = self.entries[idx];
                    if victim.promoted {
                        events.push(HotEvent::Demote(victim.page));
                    }
                    self.entries[idx] = new_entry;
                }
                events
            }

            pub fn is_hot(&self, page: PageNum) -> bool {
                self.entries.iter().any(|e| e.page == page && e.promoted)
            }

            pub fn len(&self) -> usize {
                self.entries.len()
            }
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The indexed tracker must emit the exact event stream of the
    /// linear-scan oracle — same promotions, same demotions (so same
    /// victims), same hot set — across hit-heavy, miss-heavy, saturating,
    /// and interval-clearing regimes.
    #[test]
    fn differential_against_reference_implementation() {
        // (capacity, counter_bits, threshold, clear_interval, universe)
        let configs = [
            (8usize, 3u32, 3u32, 64u64, 32u64), // hit-heavy + saturation
            (16, 8, 4, 97, 10_000),             // miss-heavy (bench regime)
            (4, 2, 1, 1, 16),                   // clears every access
            (128, 8, 16, 1_000, 512),           // default-shaped geometry
            (1, 4, 2, 50, 8),                   // single-entry churn
        ];
        for (ci, &(cap, bits, thr, clear, universe)) in configs.iter().enumerate() {
            let mut new = HotpageTracker::new(cap, bits, thr, clear);
            let mut oracle = reference::RefTracker::new(cap, bits, thr, clear);
            let mut rng = 0xD1F0_0000u64 + ci as u64;
            for op in 0..50_000u64 {
                let r = splitmix64(&mut rng);
                // Skew toward a small hot set half the time so promotions
                // actually fire alongside the churn.
                let page = if r & 1 == 0 {
                    p(r % 4)
                } else {
                    p((r >> 1) % universe)
                };
                let got = new.record(page);
                let want = oracle.record(page);
                assert_eq!(
                    got, want,
                    "config {ci}: events diverged at op {op} on page {page:?}"
                );
                assert_eq!(
                    new.len(),
                    oracle.len(),
                    "config {ci}: len diverged at op {op}"
                );
                if op % 997 == 0 {
                    for q in 0..universe.min(64) {
                        assert_eq!(
                            new.is_hot(p(q)),
                            oracle.is_hot(p(q)),
                            "config {ci}: hot set diverged at op {op} for page {q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn promotion_fires_once() {
        let mut t = HotpageTracker::new(4, 8, 2, 1000);
        assert!(t.record(p(1)).is_empty());
        let ev = t.record(p(1));
        assert_eq!(ev.len(), 1);
        assert!(ev.contains(&HotEvent::Promote(p(1))));
        assert!(t.record(p(1)).is_empty(), "no duplicate promotions");
        assert!(t.is_hot(p(1)));
    }

    #[test]
    fn replacement_evicts_smallest_counter() {
        let mut t = HotpageTracker::new(2, 8, 100, 1000);
        t.record(p(1));
        t.record(p(1));
        t.record(p(2)); // counter 1 — smallest
        t.record(p(3)); // evicts p(2)
        assert_eq!(t.len(), 2);
        t.record(p(1));
        assert!(!t.is_hot(p(2)));
    }

    #[test]
    fn demotion_on_eviction_of_promoted_page() {
        let mut t = HotpageTracker::new(1, 8, 1, 1000);
        let ev = t.record(p(1));
        assert_eq!(ev.len(), 1);
        assert!(ev.contains(&HotEvent::Promote(p(1))));
        let ev = t.record(p(2));
        assert!(ev.contains(&HotEvent::Demote(p(1))));
    }

    #[test]
    fn counters_saturate() {
        let mut t = HotpageTracker::new(1, 2, 100, 1_000_000);
        for _ in 0..10 {
            t.record(p(1));
        }
        // counter_max for 2 bits is 3; no panic and still tracked.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn interval_clear_resets_counters() {
        let mut t = HotpageTracker::new(2, 8, 4, 5);
        for _ in 0..3 {
            t.record(p(1)); // counter 3, below threshold 4
        }
        t.record(p(2)); // 4th access
        t.record(p(2)); // 5th access triggers clear first, then counts
                        // p(1)'s counter was cleared; three more accesses stay below the
                        // threshold again (clear interval keeps resetting long streaks of
                        // slow pages).
        let ev = t.record(p(1));
        assert!(ev.is_empty());
    }

    #[test]
    fn striding_working_set_larger_than_table_promotes_nothing() {
        // Paper §VII-B: efficacy requires hotpage striping < n.
        let mut t = HotpageTracker::new(8, 8, 4, 1_000_000);
        for round in 0..20 {
            for i in 0..16 {
                let ev = t.record(p(i));
                for e in ev {
                    assert!(
                        !matches!(e, HotEvent::Promote(_)),
                        "unexpected promotion in round {round}"
                    );
                }
            }
        }
    }
}
