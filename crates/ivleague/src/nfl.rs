//! The Node Free-List (NFL): O(1) runtime assignment and reclamation of
//! TreeLing node slots (paper §VI-C1, Figures 7 and 8).
//!
//! The NFL is an in-memory, per-TreeLing structure. Each NFL *entry* pairs a
//! node tag with an availability bit-vector over that node's slots; eight
//! entries share one 64 B NFL *block*. A `head` register names the block
//! currently being consumed. The state machine maintains one invariant:
//!
//! > **Every NFL block before `head` is fully mapped** (no available bits).
//!
//! Consequences (the paper's O(1) claims):
//!
//! * *Allocation* looks only at the head block, advancing at most one block;
//! * *Deallocation* updates a matching entry in the head block, or replaces
//!   a fully-assigned entry there, or moves `head` back exactly one block
//!   (which the invariant guarantees is fully mapped) and replaces there.
//!
//! When `head` is already at the first block and no entry can be reused,
//! the caller falls back to the previous TreeLing of the same domain
//! (cross-TreeLing maintenance); if no NFL can absorb the freed slot it
//! becomes *untracked* — the quantity Figure 17b reports.
//!
//! Tags are opaque `u64` keys so an NFL block can track nodes of *another*
//! TreeLing during cross-TreeLing maintenance.

/// One touched NFL block, for memory-traffic accounting by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NflOp {
    /// Index of the touched NFL block within this NFL.
    pub block: u32,
    /// Whether the touch dirtied the block.
    pub write: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    tag: u64,
    /// Bit `i` set ⇔ slot `i` is available for mapping.
    avail: u8,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Block {
    entries: Vec<Entry>,
    /// Occupancy mask: bit `i` set ⇔ `entries[i].avail != 0`. Maintained on
    /// every `avail` mutation so both scans the state machine performs —
    /// "first entry with availability" (allocation) and "first fully-
    /// assigned entry" (replacement on free) — collapse to one
    /// `trailing_zeros` instead of a linear walk.
    avail_bits: u64,
}

impl Block {
    fn new(entries: Vec<Entry>) -> Self {
        let mut avail_bits = 0u64;
        for (i, e) in entries.iter().enumerate() {
            if e.avail != 0 {
                avail_bits |= 1 << i;
            }
        }
        Block {
            entries,
            avail_bits,
        }
    }

    fn fully_mapped(&self) -> bool {
        self.avail_bits == 0
    }

    /// Index of the first entry with available slots (the allocation scan).
    fn first_available(&self) -> Option<usize> {
        if self.avail_bits == 0 {
            None
        } else {
            Some(self.avail_bits.trailing_zeros() as usize)
        }
    }

    /// Index of the first fully-assigned entry (the replacement scan).
    fn first_fully_assigned(&self) -> Option<usize> {
        let len_mask = if self.entries.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.entries.len()) - 1
        };
        let used = !self.avail_bits & len_mask;
        if used == 0 {
            None
        } else {
            Some(used.trailing_zeros() as usize)
        }
    }
}

/// Result of a deallocation attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FreeOutcome {
    /// The freed slot is tracked again; the touched blocks are reported.
    Tracked(Vec<NflOp>),
    /// This NFL cannot absorb the slot (head at first block, nothing
    /// replaceable): the caller should try the domain's previous TreeLing.
    Fallback(Vec<NflOp>),
}

/// A successful allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Tag of the node that received the mapping.
    pub tag: u64,
    /// Slot index within the node.
    pub slot: u8,
    /// NFL blocks touched.
    pub ops: Vec<NflOp>,
}

/// The per-TreeLing Node Free-List.
///
/// # Examples
///
/// ```
/// use ivleague::nfl::Nfl;
/// let mut nfl = Nfl::new(vec![10, 11, 12, 13], 8, 2);
/// let a = nfl.alloc().unwrap();
/// assert_eq!((a.tag, a.slot), (10, 0));
/// assert!(matches!(nfl.free(10, 0), ivleague::nfl::FreeOutcome::Tracked(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfl {
    blocks: Vec<Block>,
    slots_per_node: u8,
    head: usize,
    /// Free slots currently tracked (for utilization accounting).
    free_tracked: u64,
}

impl Nfl {
    /// Builds an NFL tracking `tags` (in allocation order — leaf-only and
    /// index-ordered for Basic, root-first for Invert), with
    /// `slots_per_node` slots per node (≤ 8) and `entries_per_block`
    /// entries per 64 B NFL block.
    ///
    /// # Panics
    ///
    /// Panics if `tags` is empty, `slots_per_node` is 0 or > 8, or
    /// `entries_per_block` is 0.
    pub fn new(tags: Vec<u64>, slots_per_node: u8, entries_per_block: usize) -> Self {
        assert!(!tags.is_empty(), "NFL needs at least one node");
        assert!(
            (1..=8).contains(&slots_per_node),
            "availability vector is 8 bits"
        );
        assert!(
            (1..=64).contains(&entries_per_block),
            "occupancy mask is 64 bits"
        );
        let full_mask = if slots_per_node == 8 {
            0xFF
        } else {
            (1u8 << slots_per_node) - 1
        };
        let free_tracked = tags.len() as u64 * slots_per_node as u64;
        let blocks = tags
            .chunks(entries_per_block)
            .map(|chunk| {
                Block::new(
                    chunk
                        .iter()
                        .map(|&tag| Entry {
                            tag,
                            avail: full_mask,
                        })
                        .collect(),
                )
            })
            .collect();
        Nfl {
            blocks,
            slots_per_node,
            head: 0,
            free_tracked,
        }
    }

    /// Number of NFL blocks.
    pub fn block_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Current head block index.
    pub fn head(&self) -> u32 {
        self.head as u32
    }

    /// Free slots currently tracked by this NFL.
    pub fn free_tracked(&self) -> u64 {
        self.free_tracked
    }

    /// Whether no allocation can be served.
    pub fn is_exhausted(&self) -> bool {
        self.head >= self.blocks.len()
            || (self.head == self.blocks.len() - 1 && self.blocks[self.head].fully_mapped())
    }

    /// Allocates one slot. Returns `None` when the TreeLing is exhausted.
    pub fn alloc(&mut self) -> Option<Allocation> {
        let mut ops = Vec::with_capacity(2);
        loop {
            let head = self.head;
            let block = self.blocks.get_mut(head)?;
            if let Some(ei) = block.first_available() {
                let entry = &mut block.entries[ei];
                let slot = entry.avail.trailing_zeros() as u8;
                entry.avail &= !(1 << slot);
                let tag = entry.tag;
                if entry.avail == 0 {
                    block.avail_bits &= !(1 << ei);
                }
                ops.push(NflOp {
                    block: head as u32,
                    write: true,
                });
                self.free_tracked -= 1;
                // Advance eagerly when the block just became full so the
                // invariant (blocks before head fully mapped) holds.
                if self.blocks[head].fully_mapped() {
                    self.head = head + 1;
                }
                return Some(Allocation { tag, slot, ops });
            }
            // Head block fully mapped (can happen after a head retreat
            // consumed the retreat block): advance and retry — at most one
            // extra block is inspected per the paper's O(1) bound.
            ops.push(NflOp {
                block: head as u32,
                write: false,
            });
            self.head = head + 1;
            if self.head >= self.blocks.len() {
                return None;
            }
        }
    }

    /// Returns a freed slot to the free list.
    ///
    /// `tag` may belong to a *different* TreeLing (cross-TreeLing
    /// maintenance): the NFL only manipulates opaque tags.
    pub fn free(&mut self, tag: u64, slot: u8) -> FreeOutcome {
        let mut ops = Vec::with_capacity(2);
        let head = self.head.min(self.blocks.len() - 1);

        // Case (d): in-place update on a tag match in the current block.
        // (A tag search, not an occupancy question — the mask cannot answer
        // it, so this probe stays a scan over the ≤ 8-entry block.)
        if let Some(ei) = self.blocks[head].entries.iter().position(|e| e.tag == tag) {
            let block = &mut self.blocks[head];
            block.entries[ei].avail |= 1 << slot;
            block.avail_bits |= 1 << ei;
            self.free_tracked += 1;
            ops.push(NflOp {
                block: head as u32,
                write: true,
            });
            self.head = head; // a retreat past the end is healed here
            return FreeOutcome::Tracked(ops);
        }

        // Case (e): replace a fully-assigned entry in the current block —
        // it tracks no availability, so nothing is lost.
        ops.push(NflOp {
            block: head as u32,
            write: false,
        });
        if let Some(ei) = self.blocks[head].first_fully_assigned() {
            let block = &mut self.blocks[head];
            block.entries[ei] = Entry {
                tag,
                avail: 1 << slot,
            };
            block.avail_bits |= 1 << ei;
            self.free_tracked += 1;
            ops.push(NflOp {
                block: head as u32,
                write: true,
            });
            self.head = head;
            return FreeOutcome::Tracked(ops);
        }

        // Case (f): retreat one block; the invariant guarantees that block
        // is fully mapped, so any entry can be reused.
        if head > 0 {
            let prev = head - 1;
            ops.push(NflOp {
                block: prev as u32,
                write: true,
            });
            debug_assert!(
                self.blocks[prev].fully_mapped(),
                "invariant: blocks before head are fully mapped"
            );
            self.blocks[prev].entries[0] = Entry {
                tag,
                avail: 1 << slot,
            };
            self.blocks[prev].avail_bits |= 1;
            self.free_tracked += 1;
            self.head = prev;
            return FreeOutcome::Tracked(ops);
        }

        // Head is the first block and nothing is replaceable: hand the slot
        // to the caller for cross-TreeLing maintenance.
        FreeOutcome::Fallback(ops)
    }

    /// Test/verification helper: checks the head invariant and that every
    /// block's occupancy mask agrees with its entries.
    pub fn invariant_holds(&self) -> bool {
        let masks_consistent = self.blocks.iter().all(|b| {
            b.entries
                .iter()
                .enumerate()
                .all(|(i, e)| (b.avail_bits >> i) & 1 == u64::from(e.avail != 0))
        });
        masks_consistent
            && self.blocks[..self.head.min(self.blocks.len())]
                .iter()
                .all(Block::fully_mapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfl(nodes: u64, entries_per_block: usize) -> Nfl {
        Nfl::new((0..nodes).collect(), 8, entries_per_block)
    }

    #[test]
    fn allocates_in_order() {
        let mut n = nfl(2, 4);
        for slot in 0..8 {
            let a = n.alloc().unwrap();
            assert_eq!((a.tag, a.slot), (0, slot));
        }
        let a = n.alloc().unwrap();
        assert_eq!((a.tag, a.slot), (1, 0));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut n = nfl(1, 4);
        for _ in 0..8 {
            assert!(n.alloc().is_some());
        }
        assert!(n.is_exhausted());
        assert!(n.alloc().is_none());
    }

    #[test]
    fn fig8d_in_place_update() {
        // Free a slot whose node is tracked in the current block.
        let mut n = nfl(8, 4); // 2 blocks of 4 entries
        for _ in 0..3 {
            n.alloc().unwrap();
        }
        // Node 0 partially consumed; current block is still block 0.
        match n.free(0, 1) {
            FreeOutcome::Tracked(ops) => {
                assert_eq!(ops.len(), 1);
                assert!(ops[0].write);
            }
            other => panic!("expected tracked, got {other:?}"),
        }
        // The freed slot is reallocated before untouched ones.
        let a = n.alloc().unwrap();
        assert_eq!((a.tag, a.slot), (0, 1));
    }

    #[test]
    fn fig8c_head_advances_when_block_full() {
        let mut n = nfl(8, 4);
        for _ in 0..32 {
            n.alloc().unwrap();
        }
        assert_eq!(n.head(), 1);
        assert!(n.invariant_holds());
    }

    #[test]
    fn fig8e_replaces_fully_assigned_entry() {
        let mut n = nfl(8, 4);
        // Fill node 0 completely and node 1 partially; head stays at block 0.
        for _ in 0..10 {
            n.alloc().unwrap();
        }
        // Free a slot of node 5 (tracked in block 1, not current). Node 0's
        // entry is fully assigned → replaced.
        match n.free(5, 3) {
            FreeOutcome::Tracked(_) => {}
            other => panic!("expected tracked, got {other:?}"),
        }
        // Freed (5, 3) must be reallocated before node 1's remaining slots
        // only if it comes first in entry order — entry 0 was replaced, so:
        let a = n.alloc().unwrap();
        assert_eq!((a.tag, a.slot), (5, 3));
        assert!(n.invariant_holds());
    }

    #[test]
    fn fig8f_head_retreats_one_block() {
        let mut n = nfl(8, 4);
        // Consume blocks 0 and 1 partially: fill all of block 0 (32 slots)
        // and a bit of block 1.
        for _ in 0..34 {
            n.alloc().unwrap();
        }
        assert_eq!(n.head(), 1);
        // Free slots of nodes tracked in block 0 until block 1's entries
        // would be needed: first frees hit case (e)? Block 1's current
        // entries: node 4 (2 used) others untouched → no fully-assigned
        // entry after we... craft it simpler: free a foreign tag.
        // Block 1 has no entry with tag 99 and no fully-assigned entry
        // (nodes 5..8 untouched, node 4 partial) → retreat to block 0.
        match n.free(99, 0) {
            FreeOutcome::Tracked(ops) => {
                assert!(ops.iter().any(|o| o.block == 0 && o.write));
            }
            other => panic!("expected tracked, got {other:?}"),
        }
        assert_eq!(n.head(), 0);
        assert!(n.invariant_holds());
        // Allocation serves the retreat block first.
        let a = n.alloc().unwrap();
        assert_eq!((a.tag, a.slot), (99, 0));
    }

    #[test]
    fn fallback_when_first_block_unusable() {
        let mut n = nfl(4, 4); // single block
        n.alloc().unwrap(); // node 0 partially used, no fully-assigned entry
        match n.free(77, 0) {
            FreeOutcome::Fallback(_) => {}
            other => panic!("expected fallback, got {other:?}"),
        }
    }

    #[test]
    fn foreign_tags_are_tracked_and_served() {
        let mut n = nfl(4, 4);
        // Fill node 0 fully → entry fully assigned.
        for _ in 0..8 {
            n.alloc().unwrap();
        }
        match n.free(0xABCD, 2) {
            FreeOutcome::Tracked(_) => {}
            other => panic!("expected tracked, got {other:?}"),
        }
        let a = n.alloc().unwrap();
        assert_eq!((a.tag, a.slot), (0xABCD, 2));
    }

    #[test]
    fn free_tracked_accounting() {
        let mut n = nfl(2, 4);
        assert_eq!(n.free_tracked(), 16);
        n.alloc().unwrap();
        assert_eq!(n.free_tracked(), 15);
        n.free(0, 0);
        assert_eq!(n.free_tracked(), 16);
    }

    #[test]
    fn alloc_free_storm_preserves_invariant() {
        let mut n = nfl(16, 8);
        let mut live: Vec<(u64, u8)> = Vec::new();
        let mut rng = ivl_sim_core::rng::Xoshiro256::seed_from(42);
        for step in 0..5000 {
            if live.is_empty() || (rng.chance(0.6) && !n.is_exhausted()) {
                if let Some(a) = n.alloc() {
                    assert!(
                        !live.contains(&(a.tag, a.slot)),
                        "double allocation of ({}, {}) at step {step}",
                        a.tag,
                        a.slot
                    );
                    live.push((a.tag, a.slot));
                }
            } else {
                let idx = rng.index(live.len());
                let (tag, slot) = live.swap_remove(idx);
                n.free(tag, slot);
            }
            assert!(n.invariant_holds(), "invariant broken at step {step}");
        }
    }
}
