//! The IvLeague timing model: an [`IntegritySubsystem`] implementation for
//! IvLeague-Basic, -Invert and -Pro (and the naive BV-v1/BV-v2 allocator
//! baselines of Figure 17a).
//!
//! Differences from the global-tree Baseline, exactly as the paper costs
//! them (§X-A1):
//!
//! * verification consults the **LMM cache** to find the page's TreeLing
//!   slot (a miss costs one page-table memory read);
//! * the walk runs from the mapped node up to the TreeLing root and
//!   terminates at the **locked upper structure** (always on-chip);
//! * page allocation/deallocation drives the **NFL** through the on-chip
//!   NFLB, with misses and dirty evictions costing NFL memory traffic;
//! * locking the upper structure **reserves part of the tree cache**,
//!   shrinking the capacity available to intra-TreeLing nodes;
//! * Pro's tracker promotes hotpages; migrations cost a hash copy plus an
//!   LMM update off the critical path.

use ivl_cache::cam::CamBuffer;
use ivl_cache::set_assoc::SetAssocCache;
use ivl_cache::CacheModel;
use ivl_dram::DramModel;
use ivl_secure_mem::layout::MetadataLayout;
use ivl_secure_mem::subsystem::{IntegritySubsystem, IvStats};
use ivl_sim_core::addr::{BlockAddr, PageNum};
use ivl_sim_core::config::{IvLeagueConfig, IvVariant, SecureMemConfig, SystemConfig};
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::obs::registry::StatsRegistry;
use ivl_sim_core::obs::trace::{CacheKind, EventKind};
use ivl_sim_core::obs::{Obs, Phase};
use ivl_sim_core::Cycle;

use crate::bitvector::{BvAllocator, BvVariant};
use crate::forest::{Forest, ForestConfig, TaggedNflOp};
use crate::geometry::{LeafSlot, TreeLingId, TreeLingLayout};
use crate::lmm::{pte_block, LmmCache};
use crate::tracker::{HotEvent, HotpageTracker};

/// Which page→slot allocator the subsystem runs (Figure 17a compares them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorKind {
    /// The paper's Node Free-List (the IvLeague design point).
    Nfl,
    /// Naive per-TreeLing bit vector, current-TreeLing tracking only.
    BvV1,
    /// Naive bit vector with cross-TreeLing tracking (and scans).
    BvV2,
}

#[derive(Debug)]
enum Mapper {
    Nfl(Forest),
    Bv(BvAllocator),
}

/// Precomputed terminal latencies for the verification walk, keyed by
/// (tree level, metadata-cache hit class). The walk's variable cost is the
/// stateful DRAM/cache traffic; what *is* constant — the on-chip tail of
/// cache-hit latency plus hash check, or hash check alone after a memory
/// fetch — is folded into this table once at construction instead of being
/// re-summed from config fields on every access. The domain dimension
/// collapses because every domain shares one TreeLing geometry and the
/// locked upper structure; with today's uniform per-level costs the rows
/// are identical, but the walk reads through the (level, hit) key so
/// variant-specific level costs slot in without touching the loop.
#[derive(Debug, Clone)]
struct WalkLatencyTable {
    /// `terminal[level][hit as usize]`: cycles to finish verification once
    /// the walk terminates at `level` (hit = ended on-chip).
    terminal: Vec<[Cycle; 2]>,
}

impl WalkLatencyTable {
    fn new(levels: usize, secure: &SecureMemConfig) -> Self {
        let mem_tail = secure.hash_latency;
        let chip_tail = secure.tree_cache.hit_latency + secure.hash_latency;
        WalkLatencyTable {
            // +2: level 0 (unused) and the virtual above-root terminal.
            terminal: vec![[mem_tail, chip_tail]; levels + 2],
        }
    }

    #[inline]
    fn terminal(&self, level: u32, on_chip: bool) -> Cycle {
        self.terminal[(level as usize).min(self.terminal.len() - 1)][on_chip as usize]
    }

    /// The above-root terminal (locked upper structure, always on-chip).
    #[inline]
    fn root(&self) -> Cycle {
        self.terminal[self.terminal.len() - 1][1]
    }
}

/// The IvLeague integrity subsystem.
///
/// # Examples
///
/// ```
/// use ivleague::scheme::{AllocatorKind, IvLeagueSubsystem};
/// use ivl_secure_mem::subsystem::IntegritySubsystem;
/// use ivl_dram::DramModel;
/// use ivl_sim_core::{addr::PageNum, config::{IvVariant, SystemConfig}, domain::DomainId};
///
/// let cfg = SystemConfig::default();
/// let mut dram = DramModel::new(&cfg.dram);
/// let mut s = IvLeagueSubsystem::new(&cfg, IvVariant::Basic, AllocatorKind::Nfl);
/// let d = DomainId::new_unchecked(1);
/// let page = PageNum::new(42);
/// s.page_alloc(0, &mut dram, page, d);
/// let done = s.data_access(100, &mut dram, page.block(0), d, false);
/// assert!(done > 100);
/// ```
#[derive(Debug)]
pub struct IvLeagueSubsystem {
    variant: IvVariant,
    allocator: AllocatorKind,
    lock_upper: bool,
    /// The two config slices the hot path reads (both `Copy`); the scheme
    /// never needs the rest of `SystemConfig` after construction, so it no
    /// longer clones the full struct.
    ivcfg: IvLeagueConfig,
    secure: SecureMemConfig,
    /// Memoized constant walk-terminal latencies.
    lat: WalkLatencyTable,
    mapper: Mapper,
    /// Static counter/MAC layout (counters stay statically addressed).
    data_layout: MetadataLayout,
    tl_layout: TreeLingLayout,
    ctr_cache: SetAssocCache,
    tree_cache: SetAssocCache,
    mac_cache: SetAssocCache,
    lmm_cache: LmmCache,
    /// Per-domain on-chip NFL buffers indexed densely by
    /// [`DomainId::index`]; payload = dirty flag. `None` = domain has no
    /// buffer yet (or was destroyed — reused IDs start fresh).
    nflb: Vec<Option<CamBuffer<bool>>>,
    /// Per-domain hotpage trackers (Pro), same dense indexing.
    trackers: Vec<Option<HotpageTracker>>,
    /// First block of the in-memory NFL region.
    nfl_base: u64,
    /// NFL blocks reserved per TreeLing (regular + hot).
    nfl_stride: u64,
    /// NFL depth-region block offset within a TreeLing's NFL slice.
    nfl_depth_offset: u64,
    /// NFL hot-region block offset within a TreeLing's NFL slice.
    nfl_hot_offset: u64,
    /// First block of the page-table region.
    pt_base: u64,
    stats: IvStats,
    obs: Obs,
    /// Cached `obs.tracer.enabled()` / `obs.profiler.is_enabled()` /
    /// `obs.timeline.enabled()` so the per-access path branches on a bool
    /// instead of chasing the handles.
    trace_on: bool,
    prof_on: bool,
    tl_on: bool,
    /// Scratch for the batched sibling-leg DRAM issue in
    /// [`data_access`](IntegritySubsystem::data_access): reused every
    /// access so the hot path never allocates.
    batch_legs: Vec<(BlockAddr, bool)>,
    batch_done: Vec<Cycle>,
}

impl IvLeagueSubsystem {
    /// Builds the subsystem from the Table I configuration.
    pub fn new(cfg: &SystemConfig, variant: IvVariant, allocator: AllocatorKind) -> Self {
        Self::with_options(cfg, variant, allocator, true)
    }

    /// Like [`new`](Self::new) with an explicit root-locking choice.
    /// `lock_upper = false` is the **insecure ablation**: the structure
    /// above TreeLing roots competes for cache space like ordinary
    /// metadata, which re-opens cross-domain sharing of those blocks (the
    /// side channel §VIII's locking exists to close) and lengthens walks.
    pub fn with_options(
        cfg: &SystemConfig,
        variant: IvVariant,
        allocator: AllocatorKind,
        lock_upper: bool,
    ) -> Self {
        let data_pages = cfg.total_pages();
        let data_layout = MetadataLayout::new(data_pages, cfg.secure.tree_arity);
        let forest_cfg =
            ForestConfig::from_ivleague(&cfg.ivleague, cfg.secure.tree_arity as u32, variant);
        let geometry = forest_cfg.geometry;
        let tl_layout = TreeLingLayout::new(
            geometry,
            forest_cfg.treeling_count,
            data_layout.total_blocks(),
        );

        let mut tree_cache = SetAssocCache::with_geometry(
            cfg.secure.tree_cache.capacity_bytes,
            cfg.secure.tree_cache.ways,
            cfg.secure.tree_cache.line_bytes,
        );
        // Pin the upper structure: TreeLing roots verify against these
        // locked blocks, so no walk ever leaves its TreeLing.
        if lock_upper {
            for b in tl_layout.upper_structure_blocks() {
                tree_cache.lock(b.index());
            }
        }

        let epb = cfg.ivleague.nfl_entries_per_block as u64;
        // Region budgets: top (intermediate levels), depth (leaves), hot.
        let top_blocks = (geometry.nodes_per_treeling() as u64).div_ceil(epb);
        let depth_blocks = (geometry.nodes_at_level(1) as u64).div_ceil(epb).max(1);
        let hot_blocks = (geometry.nodes_per_treeling() as u64 / 4)
            .div_ceil(epb)
            .max(1);
        let nfl_base = tl_layout
            .node_block(
                TreeLingId(0),
                crate::geometry::TlNode { level: 1, index: 0 },
            )
            .index()
            + tl_layout.total_blocks();
        let nfl_stride = top_blocks + depth_blocks + hot_blocks;
        let pt_base = nfl_base + forest_cfg.treeling_count as u64 * nfl_stride;

        let mapper = match allocator {
            AllocatorKind::Nfl => Mapper::Nfl(Forest::new(forest_cfg)),
            AllocatorKind::BvV1 => Mapper::Bv(BvAllocator::new(
                geometry,
                forest_cfg.treeling_count,
                BvVariant::V1,
            )),
            AllocatorKind::BvV2 => Mapper::Bv(BvAllocator::new(
                geometry,
                forest_cfg.treeling_count,
                BvVariant::V2,
            )),
        };

        IvLeagueSubsystem {
            variant,
            allocator,
            lock_upper,
            ivcfg: cfg.ivleague,
            secure: cfg.secure,
            lat: WalkLatencyTable::new(cfg.ivleague.treeling_levels, &cfg.secure),
            mapper,
            data_layout,
            tl_layout,
            ctr_cache: SetAssocCache::with_geometry(
                cfg.secure.counter_cache.capacity_bytes,
                cfg.secure.counter_cache.ways,
                cfg.secure.counter_cache.line_bytes,
            ),
            tree_cache,
            mac_cache: SetAssocCache::with_geometry(32 * 1024, 8, 64),
            lmm_cache: LmmCache::new(cfg.ivleague.lmm_cache_entries, cfg.ivleague.lmm_cache_ways),
            nflb: Vec::new(),
            trackers: Vec::new(),
            nfl_base,
            nfl_stride,
            nfl_depth_offset: top_blocks,
            nfl_hot_offset: top_blocks + depth_blocks,
            pt_base,
            stats: IvStats::default(),
            obs: Obs::disabled(),
            trace_on: false,
            prof_on: false,
            tl_on: false,
            batch_legs: Vec::with_capacity(6),
            batch_done: Vec::with_capacity(6),
        }
    }

    /// Emits a metadata-cache access event when tracing is on.
    fn trace_cache(
        &self,
        now: Cycle,
        domain: DomainId,
        cache: CacheKind,
        hit: bool,
        evicted: bool,
    ) {
        if self.trace_on {
            self.obs.tracer.emit(
                now,
                "scheme",
                Some(domain),
                None,
                EventKind::CacheAccess {
                    cache,
                    hit,
                    evicted,
                },
            );
        }
    }

    /// Ensures the dense table slot for `domain` exists, growing the table
    /// as higher domain IDs appear.
    fn ensure_nflb(&mut self, domain: DomainId) -> usize {
        let di = domain.index();
        if di >= self.nflb.len() {
            self.nflb.resize_with(di + 1, || None);
        }
        if self.nflb[di].is_none() {
            self.nflb[di] = Some(CamBuffer::new(self.ivcfg.nflb_entries_per_domain));
        }
        di
    }

    /// The functional forest (NFL allocator runs only).
    pub fn forest(&self) -> Option<&Forest> {
        match &self.mapper {
            Mapper::Nfl(f) => Some(f),
            Mapper::Bv(_) => None,
        }
    }

    /// The bit-vector allocator (BV runs only).
    pub fn bv(&self) -> Option<&BvAllocator> {
        match &self.mapper {
            Mapper::Bv(b) => Some(b),
            Mapper::Nfl(_) => None,
        }
    }

    /// The TreeLing layout (for tests and the attack model).
    pub fn tl_layout(&self) -> &TreeLingLayout {
        &self.tl_layout
    }

    /// Models a successful attacker eviction of one tree-node block
    /// (locked upper-structure blocks cannot be evicted — `invalidate`
    /// removes the line regardless, so callers must not target them; the
    /// attack model only targets unlocked intra-TreeLing nodes).
    pub fn evict_tree_block(&mut self, node_block: ivl_sim_core::addr::BlockAddr) {
        self.tree_cache.invalidate(node_block.index());
    }

    /// Models an eviction of a page's counter block.
    pub fn evict_counter_block(&mut self, page: PageNum) {
        let b = self.data_layout.counter_block(page);
        self.ctr_cache.invalidate(b.index());
    }

    /// Whether a tree-node block is currently cached.
    pub fn tree_node_cached(&self, node_block: ivl_sim_core::addr::BlockAddr) -> bool {
        self.tree_cache.probe(node_block.index())
    }

    /// The verification path (node block addresses, mapped node → root) of
    /// a page, as the attack/security analyses need it.
    pub fn path_blocks(&self, page: PageNum) -> Vec<ivl_sim_core::addr::BlockAddr> {
        let Some(slot) = self.slot_of(page) else {
            return Vec::new();
        };
        let g = self.tl_layout.geometry();
        let mut out = Vec::new();
        let mut node = Some(slot.node);
        while let Some(n) = node {
            out.push(self.tl_layout.node_block(slot.treeling, n));
            node = g.parent(n);
        }
        out
    }

    fn slot_of(&self, page: PageNum) -> Option<LeafSlot> {
        match &self.mapper {
            Mapper::Nfl(f) => f.slot_of(page),
            Mapper::Bv(b) => b.slot_of(page),
        }
    }

    fn nfl_block_addr(&self, op: &TaggedNflOp) -> BlockAddr {
        let base = self.nfl_base + op.treeling.0 as u64 * self.nfl_stride;
        let off = match op.region {
            crate::forest::NflRegion::Top => op.op.block as u64,
            crate::forest::NflRegion::Depth => self.nfl_depth_offset + op.op.block as u64,
            crate::forest::NflRegion::Hot => self.nfl_hot_offset + op.op.block as u64,
        };
        BlockAddr::new(base + off.min(self.nfl_stride - 1))
    }

    fn meta_writeback(&mut self, now: Cycle, dram: &mut DramModel, key: u64) {
        dram.access(now, BlockAddr::new(key), true);
        self.stats.meta_writes += 1;
    }

    /// Runs NFL traffic through the domain's NFLB; returns added latency.
    fn charge_nfl_ops(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        domain: DomainId,
        ops: &[TaggedNflOp],
    ) -> Cycle {
        let _nfl_timing = self.prof_on.then(|| self.obs.profiler.scope(Phase::Nfl));
        if ops.is_empty() {
            return now;
        }
        let di = self.ensure_nflb(domain);
        let mut t = now;
        for op in ops {
            let addr = self.nfl_block_addr(op);
            let buf = self.nflb[di].as_mut().expect("slot ensured above");
            match buf.get(addr.index()) {
                Some(dirty) => {
                    self.stats.nflb.hit();
                    *dirty |= op.op.write;
                    if self.trace_on {
                        self.obs.tracer.emit(
                            t,
                            "scheme",
                            Some(domain),
                            None,
                            EventKind::NflbAccess { hit: true },
                        );
                    }
                }
                None => {
                    self.stats.nflb.miss();
                    if self.tl_on {
                        self.obs.timeline.count("scheme.nflb_misses", t, 1);
                    }
                    t = dram.access(t, addr, false);
                    self.stats.nfl_mem_reads += 1;
                    self.stats.meta_reads += 1;
                    if self.trace_on {
                        self.obs.tracer.emit(
                            t,
                            "scheme",
                            Some(domain),
                            None,
                            EventKind::NflbAccess { hit: false },
                        );
                    }
                    let buf = self.nflb[di].as_mut().expect("slot ensured above");
                    if let Some((victim, dirty)) = buf.insert(addr.index(), op.op.write) {
                        if self.trace_on {
                            self.obs.tracer.emit(
                                t,
                                "scheme",
                                Some(domain),
                                None,
                                EventKind::NflbEvict,
                            );
                        }
                        if dirty {
                            dram.access(t, BlockAddr::new(victim), true);
                            self.stats.nfl_mem_writes += 1;
                            self.stats.meta_writes += 1;
                        }
                    }
                }
            }
        }
        t
    }

    /// LMM lookup: returns the completion time. Charges a page-table read
    /// on an LMM-cache miss. The caller already holds the page's slot (one
    /// mapper probe per access, not one per lookup).
    fn lmm_lookup(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        page: PageNum,
        domain: DomainId,
    ) -> Cycle {
        let hit = self.lmm_cache.access(page);
        self.stats.lmm_cache.record(hit);
        self.trace_cache(now, domain, CacheKind::Lmm, hit, false);
        if hit {
            now + self.ivcfg.lmm_hit_latency
        } else {
            let done = dram.access(now, pte_block(self.pt_base, page), false);
            self.stats.meta_reads += 1;
            done
        }
    }

    /// Verification walk from the mapped slot to the TreeLing root; stops
    /// at the first cached node or at the locked upper structure.
    fn walk(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        slot: LeafSlot,
        domain: DomainId,
        is_write: bool,
    ) -> Cycle {
        let g = self.tl_layout.geometry();
        let _walk_timing = self
            .prof_on
            .then(|| self.obs.profiler.scope(Phase::TreeWalk));
        let mut t = now;
        let mut path_len = 0u64;
        // Constant tail once the walk terminates: read from the memo table
        // instead of re-summing config latencies per access.
        let mut tail = self.lat.root();
        let mut node = Some(slot.node);
        while let Some(n) = node {
            let nb = self.tl_layout.node_block(slot.treeling, n);
            // `access` reports the pre-access hit state (locked lines count
            // as hits via `bypassed`), so the old separate `probe` was a
            // second full set scan for the same answer.
            let out = self.tree_cache.access(nb.index(), is_write);
            let hit = out.hit;
            self.stats.tree_cache.record(hit);
            if self.trace_on {
                self.obs.tracer.emit(
                    t,
                    "scheme",
                    Some(domain),
                    None,
                    EventKind::TreeWalkLevel {
                        level: n.level.min(u8::MAX as u32) as u8,
                        hit,
                    },
                );
            }
            if let Some(e) = out.evicted.filter(|e| e.dirty) {
                self.meta_writeback(t, dram, e.key);
            }
            if hit || out.bypassed {
                tail = self.lat.terminal(n.level, true);
                break;
            }
            t = dram.access(t, nb, false);
            self.stats.meta_reads += 1;
            if !is_write {
                path_len += 1;
                self.stats.fetches_by_level[(n.level as usize - 1).min(7)] += 1;
                if self.tl_on {
                    self.obs.timeline.count("scheme.walk_legs", t, 1);
                }
            }
            node = g.parent(n);
        }
        // Fell past the root: the root's hash lives in the upper structure.
        // With locking it is on-chip by construction (`lat.root()`, set
        // above); the ablation re-opens the shared evictable block.
        if node.is_none() && !self.lock_upper {
            let upper = self.tl_layout.upper_structure_blocks()[(slot.treeling.0 as usize
                / g.arity as usize)
                .min(self.tl_layout.upper_structure_blocks().len() - 1)];
            let out = self.tree_cache.access(upper.index(), is_write);
            let hit = out.hit;
            self.stats.tree_cache.record(hit);
            if let Some(e) = out.evicted.filter(|e| e.dirty) {
                self.meta_writeback(t, dram, e.key);
            }
            if hit {
                tail = self.lat.terminal(0, true);
            } else {
                t = dram.access(t, upper, false);
                self.stats.meta_reads += 1;
                if !is_write {
                    path_len += 1;
                    if self.tl_on {
                        self.obs.timeline.count("scheme.walk_legs", t, 1);
                    }
                }
                tail = self.lat.terminal(0, false);
            }
        }
        if !is_write {
            self.stats.path_len_sum += path_len;
        }
        t + tail
    }

    /// Handles Pro hotpage tracking on a data access; migrations happen off
    /// the critical path but their memory traffic is charged. Returns
    /// whether the **accessed page itself** migrated (its slot moved, so a
    /// caller holding it must re-fetch).
    fn track_hotpage(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        page: PageNum,
        domain: DomainId,
    ) -> bool {
        if self.variant != IvVariant::Pro {
            return false;
        }
        let di = domain.index();
        if di >= self.trackers.len() {
            self.trackers.resize_with(di + 1, || None);
        }
        let ivcfg = self.ivcfg;
        let tracker = self.trackers[di].get_or_insert_with(|| {
            HotpageTracker::new(
                ivcfg.tracker_entries,
                ivcfg.tracker_counter_bits,
                ivcfg.hot_threshold,
                ivcfg.tracker_clear_interval,
            )
        });
        let events = tracker.record(page);
        let mut accessed_page_moved = false;
        for event in events {
            let outcome = match (&mut self.mapper, event) {
                (Mapper::Nfl(f), HotEvent::Promote(p)) => f.promote_page(domain, p),
                (Mapper::Nfl(f), HotEvent::Demote(p)) => f.demote_page(domain, p),
                (Mapper::Bv(_), _) => None,
            };
            if let Some(m) = outcome {
                match event {
                    HotEvent::Promote(_) => self.stats.hot_migrations += 1,
                    HotEvent::Demote(_) => self.stats.hot_demotions += 1,
                }
                if self.tl_on {
                    self.obs.timeline.count("scheme.hot_churn", now, 1);
                }
                // Hash copy between node blocks + LMM/PTE refresh.
                let from = self.tl_layout.node_block(m.from.treeling, m.from.node);
                let to = self.tl_layout.node_block(m.to.treeling, m.to.node);
                dram.access(now, from, false);
                dram.access(now, to, true);
                self.stats.meta_reads += 1;
                self.stats.meta_writes += 1;
                let migrated = match event {
                    HotEvent::Promote(p) | HotEvent::Demote(p) => p,
                };
                if migrated == page {
                    accessed_page_moved = true;
                }
                self.lmm_cache.invalidate(migrated);
                dram.access(now, pte_block(self.pt_base, migrated), true);
                self.stats.meta_writes += 1;
                self.charge_nfl_ops(now, dram, domain, &m.nfl_ops);
                if let Mapper::Nfl(f) = &mut self.mapper {
                    f.recycle_ops(m.nfl_ops);
                }
            }
        }
        accessed_page_moved
    }
}

impl IntegritySubsystem for IvLeagueSubsystem {
    fn data_access(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        block: BlockAddr,
        domain: DomainId,
        is_write: bool,
    ) -> Cycle {
        let page = block.page();
        // Defensive: first touch without an explicit alloc maps the page.
        // One mapper probe serves the whole access; the slot is re-fetched
        // only when the tracker actually migrated this page.
        let mut slot = self.slot_of(page);
        if slot.is_none() {
            self.page_alloc(now, dram, page, domain);
            slot = self.slot_of(page);
        }
        // The hotpage tracker observes every access reaching the memory
        // controller (Figure 14a).
        if self.track_hotpage(now, dram, page, domain) {
            slot = self.slot_of(page);
        }

        // ── Sibling legs of this walk, batched into one DRAM issue. ──
        // Every leg below is independent and issued at `now`, in the exact
        // order the serial calls used, so the timing slabs — and therefore
        // every completion cycle — are bit-identical to one-at-a-time
        // issue; the address decode and observability gating are paid once
        // per walk instead of once per leg.

        // MAC leg (parallel).
        let mac_block = self.data_layout.mac_block(block);
        let mac = self.mac_cache.access(mac_block.index(), is_write);
        self.stats.mac_cache.record(mac.hit);
        self.trace_cache(now, domain, CacheKind::Mac, mac.hit, mac.evicted.is_some());

        // Counter leg.
        let ctr_block = self.data_layout.counter_block(page);
        let ctr = self.ctr_cache.access(ctr_block.index(), is_write);
        self.stats.counter_cache.record(ctr.hit);
        self.trace_cache(
            now,
            domain,
            CacheKind::Counter,
            ctr.hit,
            ctr.evicted.is_some(),
        );

        // Read-path LMM probe, hoisted ahead of the batch so its PTE read
        // can ride along as a sibling leg. The write path's lookup starts
        // only once the counter arrives, so it stays serial below.
        let lmm_hit = if !is_write && !ctr.hit {
            let hit = self.lmm_cache.access(page);
            self.stats.lmm_cache.record(hit);
            self.trace_cache(now, domain, CacheKind::Lmm, hit, false);
            Some(hit)
        } else {
            None
        };

        self.batch_legs.clear();
        let mut mac_read = usize::MAX;
        let mut ctr_read = usize::MAX;
        let mut pte_read = usize::MAX;
        if let Some(e) = mac.evicted.filter(|e| e.dirty) {
            self.batch_legs.push((BlockAddr::new(e.key), true));
            self.stats.meta_writes += 1;
        }
        if !mac.hit {
            mac_read = self.batch_legs.len();
            self.batch_legs.push((mac_block, false));
            self.stats.meta_reads += 1;
        }
        if let Some(e) = ctr.evicted.filter(|e| e.dirty) {
            self.batch_legs.push((BlockAddr::new(e.key), true));
            self.stats.meta_writes += 1;
        }
        let data_leg = self.batch_legs.len();
        self.batch_legs.push((block, is_write));
        if !ctr.hit {
            ctr_read = self.batch_legs.len();
            self.batch_legs.push((ctr_block, false));
            self.stats.meta_reads += 1;
        }
        if lmm_hit == Some(false) {
            pte_read = self.batch_legs.len();
            self.batch_legs.push((pte_block(self.pt_base, page), false));
            self.stats.meta_reads += 1;
        }
        dram.access_many(now, &self.batch_legs, &mut self.batch_done);

        let mac_done = if mac.hit {
            now + self.secure.counter_cache.hit_latency
        } else {
            self.batch_done[mac_read]
        };

        if is_write {
            self.stats.data_writes += 1;
            let mut t = now;
            if !ctr.hit {
                t = self.batch_done[ctr_read];
            }
            // Tree update: LMM lookup then update walk up to a cached node.
            t = self.lmm_lookup(t, dram, page, domain);
            if let Some(slot) = slot {
                t = self.walk(t, dram, slot, domain, true);
            }
            t.max(mac_done).min(now + 200)
        } else {
            self.stats.data_reads += 1;
            let data_done = self.batch_done[data_leg];
            let verify_done = if ctr.hit {
                now + self.secure.counter_cache.hit_latency
            } else {
                let ctr_done = self.batch_done[ctr_read];
                self.stats.verifications += 1;
                // Locating the TreeLing leaf needs the LMM: a hit is free,
                // a miss adds the memory indirection the paper charges
                // IvLeague-Basic for (one page-table read before the walk
                // can start).
                let lmm_done = if lmm_hit == Some(true) {
                    now + self.ivcfg.lmm_hit_latency
                } else {
                    self.batch_done[pte_read]
                };
                let mut t = ctr_done.max(lmm_done);
                if let Some(slot) = slot {
                    t = self.walk(t, dram, slot, domain, false);
                }
                t
            };
            let pad_done = verify_done + self.secure.aes_latency;
            data_done.max(pad_done).max(mac_done)
        }
    }

    fn page_alloc(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        page: PageNum,
        domain: DomainId,
    ) -> Cycle {
        if self.slot_of(page).is_some() {
            return now;
        }
        let _alloc_timing = self.prof_on.then(|| self.obs.profiler.scope(Phase::Alloc));
        let done = match &mut self.mapper {
            Mapper::Nfl(f) => match f.map_page(domain, page) {
                Ok(out) => {
                    self.stats.nfl_claims += 1;
                    if self.tl_on {
                        self.obs.timeline.count("scheme.nfl_claims", now, 1);
                    }
                    let mut t = self.charge_nfl_ops(now, dram, domain, &out.nfl_ops);
                    // PTE/LMM write for the new mapping.
                    dram.access(t, pte_block(self.pt_base, page), true);
                    self.stats.meta_writes += 1;
                    // Invert conversions: one hash copy each.
                    for _ in 0..out.conversions {
                        self.stats.meta_reads += 1;
                        self.stats.meta_writes += 1;
                        t += self.secure.hash_latency;
                    }
                    for p in &out.remapped {
                        self.lmm_cache.invalidate(*p);
                        dram.access(t, pte_block(self.pt_base, *p), true);
                        self.stats.meta_writes += 1;
                    }
                    if let Mapper::Nfl(f) = &mut self.mapper {
                        f.recycle_ops(out.nfl_ops);
                    }
                    t
                }
                Err(_) => {
                    self.stats.alloc_failures += 1;
                    now
                }
            },
            Mapper::Bv(b) => match b.map_page(domain, page) {
                Ok(out) => {
                    // The O(N) scan reads bit-vector blocks serially on the
                    // allocation's critical path.
                    let mut t = now;
                    for i in 0..out.blocks_scanned {
                        let addr = BlockAddr::new(
                            self.nfl_base
                                + out.slot.treeling.0 as u64 * self.nfl_stride
                                + (i % self.nfl_stride),
                        );
                        t = dram.access(t, addr, false);
                        self.stats.nfl_mem_reads += 1;
                        self.stats.meta_reads += 1;
                    }
                    dram.access(t, pte_block(self.pt_base, page), true);
                    self.stats.meta_writes += 1;
                    t
                }
                Err(_) => {
                    self.stats.alloc_failures += 1;
                    now
                }
            },
        };
        if self.trace_on {
            self.obs.tracer.emit(
                now,
                "scheme",
                Some(domain),
                None,
                EventKind::PageAlloc {
                    failed: self.slot_of(page).is_none(),
                },
            );
        }
        done
    }

    fn page_dealloc(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        page: PageNum,
        domain: DomainId,
    ) -> Cycle {
        let _alloc_timing = self.prof_on.then(|| self.obs.profiler.scope(Phase::Alloc));
        let t = match &mut self.mapper {
            Mapper::Nfl(f) => match f.unmap_page(domain, page) {
                Ok(out) => {
                    self.stats.nfl_recycles += 1;
                    if self.tl_on {
                        self.obs.timeline.count("scheme.nfl_recycles", now, 1);
                    }
                    let t = self.charge_nfl_ops(now, dram, domain, &out.nfl_ops);
                    if let Mapper::Nfl(f) = &mut self.mapper {
                        f.recycle_ops(out.nfl_ops);
                    }
                    t
                }
                Err(_) => now,
            },
            Mapper::Bv(b) => match b.unmap_page(domain, page) {
                Ok(out) => {
                    let mut t = now;
                    for _ in 0..out.blocks_scanned {
                        let addr = BlockAddr::new(
                            self.nfl_base + out.slot.treeling.0 as u64 * self.nfl_stride,
                        );
                        t = dram.access(t, addr, true);
                        self.stats.nfl_mem_writes += 1;
                        self.stats.meta_writes += 1;
                    }
                    t
                }
                Err(_) => now,
            },
        };
        self.lmm_cache.invalidate(page);
        dram.access(t, pte_block(self.pt_base, page), true);
        self.stats.meta_writes += 1;
        if self.trace_on {
            self.obs
                .tracer
                .emit(now, "scheme", Some(domain), None, EventKind::PageDealloc);
        }
        t
    }

    fn domain_destroyed(&mut self, domain: DomainId) {
        match &mut self.mapper {
            Mapper::Nfl(f) => f.destroy_domain(domain),
            Mapper::Bv(b) => b.destroy_domain(domain),
        }
        // Clear (not shrink) the dense slots: a recycled DomainId must see
        // a fresh NFLB and tracker, never the departed domain's state.
        let di = domain.index();
        if let Some(slot) = self.nflb.get_mut(di) {
            *slot = None;
        }
        if let Some(slot) = self.trackers.get_mut(di) {
            *slot = None;
        }
    }

    fn stats(&self) -> &IvStats {
        &self.stats
    }

    fn attach_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        self.trace_on = self.obs.tracer.enabled();
        self.prof_on = self.obs.profiler.is_enabled();
        self.tl_on = self.obs.timeline.enabled();
    }

    fn export_stats(&self, prefix: &str, reg: &mut StatsRegistry) {
        self.stats.export(prefix, reg);
        reg.set_gauge(
            &format!("{prefix}.tree_cache_occupancy"),
            self.tree_cache.occupancy() as f64,
        );
        reg.set_gauge(
            &format!("{prefix}.tree_cache_locked"),
            self.tree_cache.locked_count() as f64,
        );
        if let Mapper::Nfl(f) = &self.mapper {
            let fs = f.stats();
            reg.set_gauge(
                &format!("{prefix}.forest.mean_utilization"),
                fs.mean_utilization(),
            );
            reg.set_counter(
                &format!("{prefix}.forest.untracked_slots"),
                fs.untracked_slots,
            );
            reg.set_counter(&format!("{prefix}.forest.conversions"), fs.conversions);
            reg.set_counter(
                &format!("{prefix}.forest.treelings_assigned"),
                fs.treelings_assigned,
            );
            reg.set_counter(
                &format!("{prefix}.forest.starvation_events"),
                f.starvation_events(),
            );
        }
        for (di, buf) in self.nflb.iter().enumerate() {
            if let Some(buf) = buf {
                reg.set_gauge(&format!("{prefix}.d{di}.nflb_occupancy"), buf.len() as f64);
            }
        }
    }

    fn name(&self) -> &'static str {
        match (self.variant, self.allocator) {
            (IvVariant::Basic, AllocatorKind::Nfl) => "IvLeague-Basic",
            (IvVariant::Invert, AllocatorKind::Nfl) => "IvLeague-Invert",
            (IvVariant::Pro, AllocatorKind::Nfl) => "IvLeague-Pro",
            (_, AllocatorKind::BvV1) => "BV-v1",
            (_, AllocatorKind::BvV2) => "BV-v2",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::default();
        cfg.dram.capacity_bytes = 256 * 1024 * 1024; // keep layouts small
        cfg.ivleague.treeling_count = 64;
        cfg
    }

    fn d(i: u16) -> DomainId {
        DomainId::new_unchecked(i)
    }

    #[test]
    fn alloc_then_read_walks_treeling() {
        let cfg = small_cfg();
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = IvLeagueSubsystem::new(&cfg, IvVariant::Basic, AllocatorKind::Nfl);
        let page = PageNum::new(7);
        s.page_alloc(0, &mut dram, page, d(0));
        let done = s.data_access(100, &mut dram, page.block(0), d(0), false);
        assert!(done > 100);
        assert_eq!(s.stats().verifications, 1);
        // Basic maps at leaves: cold path reads up to `levels` nodes.
        let levels = cfg.ivleague.treeling_levels as u64;
        assert!(s.stats().path_len_sum >= 1 && s.stats().path_len_sum <= levels);
    }

    #[test]
    fn invert_shortens_cold_paths() {
        let cfg = small_cfg();
        let mut path = HashMap::new();
        for variant in [IvVariant::Basic, IvVariant::Invert] {
            let mut dram = DramModel::new(&cfg.dram);
            let mut s = IvLeagueSubsystem::new(&cfg, variant, AllocatorKind::Nfl);
            let mut t = 0;
            for i in 0..16u64 {
                let page = PageNum::new(i);
                s.page_alloc(t, &mut dram, page, d(0));
                t += 10_000;
                t = s.data_access(t, &mut dram, page.block(0), d(0), false);
                // Thrash the tree cache between accesses so walks are cold.
                for j in 0..20_000u64 {
                    let filler = PageNum::new(1000 + (i * 20_000 + j) % 30_000);
                    s.page_alloc(t, &mut dram, filler, d(0));
                    t = s.data_access(t, &mut dram, filler.block(0), d(0), false);
                }
            }
            path.insert(variant, s.stats().avg_path_length());
        }
        assert!(
            path[&IvVariant::Invert] < path[&IvVariant::Basic],
            "invert {:.2} vs basic {:.2}",
            path[&IvVariant::Invert],
            path[&IvVariant::Basic]
        );
    }

    #[test]
    fn nflb_hits_on_consecutive_allocs() {
        let cfg = small_cfg();
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = IvLeagueSubsystem::new(&cfg, IvVariant::Basic, AllocatorKind::Nfl);
        for i in 0..64 {
            s.page_alloc(i * 100, &mut dram, PageNum::new(i), d(0));
        }
        let st = s.stats();
        assert!(
            st.nflb.hit_rate() > 0.8,
            "sequential allocs should hit the NFLB: {:.2}",
            st.nflb.hit_rate()
        );
    }

    #[test]
    fn lmm_misses_cost_memory_reads() {
        let mut cfg = small_cfg();
        cfg.ivleague.lmm_cache_entries = 16;
        cfg.ivleague.lmm_cache_ways = 16;
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = IvLeagueSubsystem::new(&cfg, IvVariant::Basic, AllocatorKind::Nfl);
        // Touch many pages so LMM thrashes, then re-read them.
        for i in 0..256u64 {
            let p = PageNum::new(i);
            s.page_alloc(i * 1000, &mut dram, p, d(0));
            s.data_access(i * 1000 + 500, &mut dram, p.block(0), d(0), false);
        }
        assert!(s.stats().lmm_cache.misses() > 0);
    }

    #[test]
    fn bv_v1_reports_alloc_failures() {
        let mut cfg = small_cfg();
        cfg.ivleague.treeling_count = 2;
        cfg.ivleague.treeling_levels = 3; // 512-page TreeLings for the test
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = IvLeagueSubsystem::new(&cfg, IvVariant::Basic, AllocatorKind::BvV1);
        let mut live = std::collections::VecDeque::new();
        let mut t = 0;
        // Working set (700 pages) larger than one TreeLing (512 leaf
        // slots) so frees land in older TreeLings and leak under BV-v1.
        for i in 0..4_000u64 {
            let p = PageNum::new(i);
            t = s.page_alloc(t, &mut dram, p, d(0)) + 10;
            live.push_back(p);
            if live.len() > 700 {
                let victim = live.pop_front().expect("nonempty");
                t = s.page_dealloc(t, &mut dram, victim, d(0)) + 10;
            }
        }
        assert!(
            s.stats().alloc_failures > 0,
            "BV-v1 must exhaust under churn"
        );
    }

    #[test]
    fn isolation_of_two_domains() {
        let cfg = small_cfg();
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = IvLeagueSubsystem::new(&cfg, IvVariant::Pro, AllocatorKind::Nfl);
        let mut t = 0;
        for i in 0..200u64 {
            let dom = d((i % 2) as u16);
            let p = PageNum::new(i);
            t = s.page_alloc(t, &mut dram, p, dom) + 10;
            t = s.data_access(t, &mut dram, p.block(0), dom, i % 3 == 0) + 10;
        }
        assert!(s.forest().unwrap().verify_isolation());
    }

    /// Grows `dom` page by page until one maps at level 2 (a frontier-2
    /// TreeLing with a hot region exists), returning that page.
    fn grow_until_level2(
        s: &mut IvLeagueSubsystem,
        dram: &mut DramModel,
        dom: DomainId,
        t: &mut Cycle,
    ) -> PageNum {
        for i in 0..4096u64 {
            let p = PageNum::new(i);
            *t = s.page_alloc(*t, dram, p, dom) + 10;
            if s.forest().expect("NFL run").mapped_level(p) == Some(2) {
                return p;
            }
        }
        panic!("domain never reached a frontier-2 TreeLing");
    }

    #[test]
    fn domain_destroy_resets_dense_tables_for_recycled_ids() {
        // A recycled DomainId must never see the departed domain's tracker
        // state. Promote a page (tracker marks it `promoted`), destroy the
        // domain, rebuild the same layout under the same ID: a stale
        // tracker would keep the promoted flag and silently *suppress* the
        // second promotion; a fresh one fires it after exactly
        // `hot_threshold` accesses again.
        let mut cfg = small_cfg();
        cfg.ivleague.hot_threshold = 3;
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = IvLeagueSubsystem::new(&cfg, IvVariant::Pro, AllocatorKind::Nfl);
        let dom = d(5);
        let mut t = 0;

        let hot = grow_until_level2(&mut s, &mut dram, dom, &mut t);
        for _ in 0..2 {
            t = s.data_access(t, &mut dram, hot.block(0), dom, false) + 10;
        }
        assert_eq!(s.stats().hot_migrations, 0);
        t = s.data_access(t, &mut dram, hot.block(0), dom, false) + 10;
        assert_eq!(s.stats().hot_migrations, 1);

        s.domain_destroyed(dom);

        // Identical deterministic growth ⇒ the same page lands at level 2.
        let hot2 = grow_until_level2(&mut s, &mut dram, dom, &mut t);
        assert_eq!(hot, hot2);
        for _ in 0..2 {
            t = s.data_access(t, &mut dram, hot2.block(0), dom, false) + 10;
        }
        assert_eq!(
            s.stats().hot_migrations,
            1,
            "stale tracker counts leaked across domain destroy/recreate"
        );
        s.data_access(t, &mut dram, hot2.block(0), dom, false);
        assert_eq!(
            s.stats().hot_migrations,
            2,
            "recycled domain's fresh tracker must promote again"
        );
    }

    #[test]
    fn domain_destroy_drops_nflb_occupancy_export() {
        let cfg = small_cfg();
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = IvLeagueSubsystem::new(&cfg, IvVariant::Basic, AllocatorKind::Nfl);
        let dom = d(3);
        s.page_alloc(0, &mut dram, PageNum::new(1), dom);

        let mut reg = StatsRegistry::new();
        s.export_stats("iv", &mut reg);
        assert!(reg.gauge("iv.d3.nflb_occupancy").is_some());

        s.domain_destroyed(dom);
        let mut reg = StatsRegistry::new();
        s.export_stats("iv", &mut reg);
        assert!(
            reg.gauge("iv.d3.nflb_occupancy").is_none(),
            "destroyed domain still exports an NFLB"
        );
    }

    #[test]
    fn sparse_high_domain_ids_grow_dense_tables() {
        // Dense tables index by DomainId; a high, isolated ID must work
        // without touching the untouched low slots.
        let cfg = small_cfg();
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = IvLeagueSubsystem::new(&cfg, IvVariant::Pro, AllocatorKind::Nfl);
        let dom = d(900);
        let p = PageNum::new(4);
        s.page_alloc(0, &mut dram, p, dom);
        s.data_access(100, &mut dram, p.block(0), dom, false);
        let mut reg = StatsRegistry::new();
        s.export_stats("iv", &mut reg);
        assert!(reg.gauge("iv.d900.nflb_occupancy").is_some());
        for di in 0..900 {
            assert!(reg.gauge(&format!("iv.d{di}.nflb_occupancy")).is_none());
        }
    }

    #[test]
    fn scheme_names_match_figures() {
        let cfg = small_cfg();
        let s = IvLeagueSubsystem::new(&cfg, IvVariant::Pro, AllocatorKind::Nfl);
        assert_eq!(s.name(), "IvLeague-Pro");
        let s = IvLeagueSubsystem::new(&cfg, IvVariant::Pro, AllocatorKind::BvV2);
        assert_eq!(s.name(), "BV-v2");
    }

    #[test]
    fn trace_and_export_reconcile_with_stats() {
        use ivl_sim_core::obs::{Profiler, TraceFilter, Tracer, DEFAULT_TRACE_CAP};

        let cfg = small_cfg();
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = IvLeagueSubsystem::new(&cfg, IvVariant::Basic, AllocatorKind::Nfl);
        let obs = Obs {
            tracer: Tracer::bounded(DEFAULT_TRACE_CAP, TraceFilter::default()),
            profiler: Profiler::enabled(),
            timeline: ivl_sim_core::obs::Timeline::bounded(1_000, 1 << 12),
        };
        s.attach_obs(&obs);

        let mut t = 0;
        for i in 0..32u64 {
            let p = PageNum::new(i);
            t = s.page_alloc(t, &mut dram, p, d(0)) + 10;
            t = s.data_access(t, &mut dram, p.block(0), d(0), i % 4 == 0) + 10;
        }
        s.page_dealloc(t, &mut dram, PageNum::new(0), d(0));

        let records = obs.tracer.sorted_records();
        let st = s.stats();

        let count = |pred: &dyn Fn(&EventKind) -> bool| {
            records.iter().filter(|r| pred(&r.kind)).count() as u64
        };
        // Every NFLB lookup, tree-walk node visit, and counter/MAC cache
        // access must have left exactly one trace event.
        assert_eq!(
            count(&|k| matches!(k, EventKind::NflbAccess { .. })),
            st.nflb.total()
        );
        assert_eq!(
            count(&|k| matches!(k, EventKind::TreeWalkLevel { .. })),
            st.tree_cache.total()
        );
        assert_eq!(
            count(&|k| matches!(
                k,
                EventKind::CacheAccess {
                    cache: CacheKind::Counter,
                    ..
                }
            )),
            st.counter_cache.total()
        );
        assert_eq!(count(&|k| matches!(k, EventKind::PageAlloc { .. })), 32);
        assert_eq!(count(&|k| matches!(k, EventKind::PageDealloc)), 1);
        assert!(records.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(records.iter().all(|r| r.domain == Some(d(0))));

        // The registry export must reconcile with the raw accessors.
        let mut reg = StatsRegistry::new();
        s.export_stats("iv", &mut reg);
        assert_eq!(reg.counter("iv.data_reads"), Some(st.data_reads));
        assert_eq!(reg.counter("iv.meta_reads"), Some(st.meta_reads));
        assert_eq!(
            reg.ratio("iv.nflb").map(|hm| hm.total()),
            Some(st.nflb.total())
        );
        assert!(reg.gauge("iv.forest.mean_utilization").is_some());
        assert!(reg.gauge("iv.d0.nflb_occupancy").is_some());

        // Host-time phases were entered.
        assert!(obs.profiler.entries(Phase::Nfl) > 0);
        assert!(obs.profiler.entries(Phase::TreeWalk) > 0);
        assert_eq!(obs.profiler.entries(Phase::Alloc), 33);
    }
}
