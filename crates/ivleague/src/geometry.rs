//! TreeLing geometry and static node addressing (paper §VI-B).
//!
//! A TreeLing is a small `arity`-ary subtree with `levels` levels of nodes:
//! level `levels` is the TreeLing root (a single node), level 1 holds the
//! leaves. With split counters (one counter block per 4 KiB page) and leaf
//! slots holding counter-block hashes, a TreeLing covers
//! `arity^levels` pages.
//!
//! All TreeLing node blocks live in a dedicated, statically-addressed
//! metadata region, so walking from any node to the TreeLing root requires
//! **no memory indirection** — the property that keeps IvLeague's
//! verification latency competitive with a static global tree.
//!
//! The nodes *above* TreeLing roots (the upper structure of the global
//! tree) are locked on-chip; [`TreeLingLayout::upper_structure_blocks`]
//! enumerates them so the timing model can pin them in the metadata cache.

use ivl_sim_core::addr::BlockAddr;

/// Identifier of a TreeLing (`0..treeling_count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeLingId(pub u32);

impl std::fmt::Display for TreeLingId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// A node position inside a TreeLing: level 1 = leaves, `levels` = root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TlNode {
    /// Level within the TreeLing (1-based from the leaves).
    pub level: u32,
    /// Node index within the level.
    pub index: u32,
}

/// A mapped slot: TreeLing + node + slot index within the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeafSlot {
    /// Owning TreeLing.
    pub treeling: TreeLingId,
    /// Node holding the page's hash.
    pub node: TlNode,
    /// Slot within the node (`0..arity`).
    pub slot: u8,
}

/// Shape of every TreeLing in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeLingGeometry {
    /// Tree arity (slots per node).
    pub arity: u32,
    /// Levels of nodes (root inclusive).
    pub levels: u32,
}

impl TreeLingGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2` or `levels == 0`.
    pub fn new(arity: u32, levels: u32) -> Self {
        assert!(arity >= 2, "arity must be >= 2");
        assert!(levels >= 1, "need at least one level");
        TreeLingGeometry { arity, levels }
    }

    /// Nodes at `level` (`arity^(levels - level)`).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of `1..=levels`.
    pub fn nodes_at_level(&self, level: u32) -> u32 {
        assert!((1..=self.levels).contains(&level), "level out of range");
        self.arity.pow(self.levels - level)
    }

    /// Total node blocks per TreeLing (all levels, root included).
    pub fn nodes_per_treeling(&self) -> u32 {
        (1..=self.levels).map(|l| self.nodes_at_level(l)).sum()
    }

    /// Page-mapping capacity when only leaves hold pages (IvLeague-Basic):
    /// `arity^levels`.
    pub fn leaf_capacity(&self) -> u64 {
        (self.arity as u64).pow(self.levels)
    }

    /// Bytes of data covered per TreeLing (4 KiB per page).
    pub fn coverage_bytes(&self) -> u64 {
        self.leaf_capacity() * ivl_sim_core::addr::PAGE_BYTES as u64
    }

    /// Node-local offset of `node` when all levels are laid out root-first
    /// (level `levels` first, then `levels-1`, …, level 1 last).
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn node_offset(&self, node: TlNode) -> u32 {
        assert!(node.index < self.nodes_at_level(node.level), "node index");
        let above: u32 = (node.level + 1..=self.levels)
            .map(|l| self.nodes_at_level(l))
            .sum();
        above + node.index
    }

    /// Inverse of [`node_offset`](Self::node_offset): recovers the node from
    /// its root-first dense offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= nodes_per_treeling()`.
    pub fn node_from_offset(&self, offset: u32) -> TlNode {
        let mut remaining = offset;
        for level in (1..=self.levels).rev() {
            let count = self.nodes_at_level(level);
            if remaining < count {
                return TlNode {
                    level,
                    index: remaining,
                };
            }
            remaining -= count;
        }
        panic!("offset {offset} out of range");
    }

    /// Parent of `node` within the same TreeLing, `None` for the root.
    pub fn parent(&self, node: TlNode) -> Option<TlNode> {
        if node.level >= self.levels {
            None
        } else {
            Some(TlNode {
                level: node.level + 1,
                index: node.index / self.arity,
            })
        }
    }

    /// Slot within the parent node holding `node`'s hash.
    pub fn slot_in_parent(&self, node: TlNode) -> u8 {
        (node.index % self.arity) as u8
    }

    /// The `slot`-th child of `node`, `None` for leaves.
    pub fn child(&self, node: TlNode, slot: u8) -> Option<TlNode> {
        if node.level <= 1 {
            None
        } else {
            Some(TlNode {
                level: node.level - 1,
                index: node.index * self.arity + slot as u32,
            })
        }
    }

    /// Number of memory node reads needed to verify a page mapped at
    /// `level` when nothing is cached: nodes at `level..=levels` (the root's
    /// hash lives in a locked on-chip block).
    pub fn worst_case_path(&self, level: u32) -> u32 {
        self.levels - level + 1
    }
}

/// Static block addressing for all TreeLings and the locked upper structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeLingLayout {
    geometry: TreeLingGeometry,
    treeling_count: u32,
    /// First block index of the TreeLing node region.
    base_block: u64,
    nodes_per_treeling: u32,
    /// Upper-structure (locked on-chip) block addresses.
    upper_blocks: Vec<BlockAddr>,
}

impl TreeLingLayout {
    /// Lays out `treeling_count` TreeLings starting at block `base_block`
    /// (normally just above the counter/MAC metadata region).
    pub fn new(geometry: TreeLingGeometry, treeling_count: u32, base_block: u64) -> Self {
        let nodes_per_treeling = geometry.nodes_per_treeling();
        // Upper structure: a tree over the `treeling_count` TreeLing roots,
        // arity-ary, excluding the global root (kept in a register).
        let mut upper = Vec::new();
        let mut next = base_block + treeling_count as u64 * nodes_per_treeling as u64;
        let mut nodes = (treeling_count as u64).div_ceil(geometry.arity as u64);
        while nodes >= 1 {
            for i in 0..nodes {
                upper.push(BlockAddr::new(next + i));
            }
            next += nodes;
            if nodes == 1 {
                break;
            }
            nodes = nodes.div_ceil(geometry.arity as u64);
        }
        TreeLingLayout {
            geometry,
            treeling_count,
            base_block,
            nodes_per_treeling,
            upper_blocks: upper,
        }
    }

    /// The TreeLing geometry.
    pub fn geometry(&self) -> TreeLingGeometry {
        self.geometry
    }

    /// Number of TreeLings.
    pub fn treeling_count(&self) -> u32 {
        self.treeling_count
    }

    /// Block address of a TreeLing node.
    ///
    /// # Panics
    ///
    /// Panics if the TreeLing id or node is out of range.
    pub fn node_block(&self, treeling: TreeLingId, node: TlNode) -> BlockAddr {
        assert!(treeling.0 < self.treeling_count, "treeling out of range");
        BlockAddr::new(
            self.base_block
                + treeling.0 as u64 * self.nodes_per_treeling as u64
                + self.geometry.node_offset(node) as u64,
        )
    }

    /// Blocks of the locked upper structure (pinned in the metadata cache).
    pub fn upper_structure_blocks(&self) -> &[BlockAddr] {
        &self.upper_blocks
    }

    /// Total in-memory metadata blocks consumed by all TreeLings.
    pub fn total_blocks(&self) -> u64 {
        self.treeling_count as u64 * self.nodes_per_treeling as u64 + self.upper_blocks.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> TreeLingGeometry {
        TreeLingGeometry::new(8, 4)
    }

    #[test]
    fn level_node_counts() {
        let g = geom();
        assert_eq!(g.nodes_at_level(4), 1);
        assert_eq!(g.nodes_at_level(3), 8);
        assert_eq!(g.nodes_at_level(2), 64);
        assert_eq!(g.nodes_at_level(1), 512);
        assert_eq!(g.nodes_per_treeling(), 585);
    }

    #[test]
    fn leaf_capacity_and_coverage() {
        let g = geom();
        assert_eq!(g.leaf_capacity(), 4096);
        assert_eq!(g.coverage_bytes(), 16 * 1024 * 1024);
    }

    #[test]
    fn parent_child_round_trip() {
        let g = geom();
        let leaf = TlNode {
            level: 1,
            index: 137,
        };
        let parent = g.parent(leaf).unwrap();
        assert_eq!(parent.level, 2);
        assert_eq!(parent.index, 17);
        let slot = g.slot_in_parent(leaf);
        assert_eq!(g.child(parent, slot), Some(leaf));
        assert_eq!(g.parent(TlNode { level: 4, index: 0 }), None);
        assert_eq!(g.child(leaf, 0), None);
    }

    #[test]
    fn node_offsets_are_root_first_and_dense() {
        let g = geom();
        assert_eq!(g.node_offset(TlNode { level: 4, index: 0 }), 0);
        assert_eq!(g.node_offset(TlNode { level: 3, index: 0 }), 1);
        assert_eq!(g.node_offset(TlNode { level: 3, index: 7 }), 8);
        assert_eq!(g.node_offset(TlNode { level: 2, index: 0 }), 9);
        assert_eq!(
            g.node_offset(TlNode {
                level: 1,
                index: 511
            }),
            584
        );
    }

    #[test]
    fn node_offsets_unique() {
        let g = TreeLingGeometry::new(4, 3);
        let mut seen = std::collections::HashSet::new();
        for level in 1..=3 {
            for idx in 0..g.nodes_at_level(level) {
                assert!(seen.insert(g.node_offset(TlNode { level, index: idx })));
            }
        }
        assert_eq!(seen.len() as u32, g.nodes_per_treeling());
    }

    #[test]
    fn layout_addresses_disjoint_across_treelings() {
        let layout = TreeLingLayout::new(geom(), 16, 1000);
        let a = layout.node_block(
            TreeLingId(0),
            TlNode {
                level: 1,
                index: 511,
            },
        );
        let b = layout.node_block(TreeLingId(1), TlNode { level: 4, index: 0 });
        assert_eq!(a.index() + 1, b.index());
    }

    #[test]
    fn upper_structure_counts() {
        // 4096 TreeLings, arity 8 → 512 + 64 + 8 + 1 = 585 locked blocks.
        let layout = TreeLingLayout::new(geom(), 4096, 0);
        assert_eq!(layout.upper_structure_blocks().len(), 585);
    }

    #[test]
    fn worst_case_path_counts_mapped_to_root() {
        let g = geom();
        assert_eq!(g.worst_case_path(1), 4); // leaf mapping (Basic)
        assert_eq!(g.worst_case_path(3), 2); // Invert's initial top level
    }

    #[test]
    fn display_shapes() {
        assert_eq!(format!("{}", TreeLingId(3)), "τ3");
    }
}
