//! Sharded, atomics-driven leaf-slot allocator over the TreeLing forest.
//!
//! The serial [`Forest`](crate::forest::Forest) walks NFL blocks under a
//! single thread because it *is* the timing model — every touched NFL block
//! is a memory-traffic event. For scale campaigns ("millions of tenants",
//! ROADMAP item 2) the bottleneck is the opposite: many domains allocating
//! and releasing leaf slots concurrently, where only the *occupancy* truth
//! matters. This module is that substrate, shaped after the llfree
//! allocator (PAPERS.md): per-TreeLing leaf-occupancy **bitsets** claimed
//! with 64-bit CAS, a per-TreeLing (= per-shard) second-level **free
//! counter** used as a cheap scan hint, and the lock-free
//! [`FreeTreeLingList`] FIFO recycling whole TreeLings between domains.
//!
//! Concurrency protocol:
//!
//! * A TreeLing is *owned* by at most one domain at a time; its owner word
//!   packs `epoch << 16 | domain_index + 1`. Claim/release calls for a
//!   TreeLing are issued by the owning domain's thread(s); releases carry
//!   the epoch they were claimed under and are **rejected deterministically
//!   when stale** — that epoch check is the ABA/recycling guard the storm
//!   tests pin (a handle that survives its domain's destruction can never
//!   corrupt the TreeLing's next owner).
//! * `claim` scans the bitset words of one TreeLing and CAS-sets one bit;
//!   a lost CAS re-reads the word and retries (counted in `cas_retries`).
//! * The free counter is a hint, not a lock: claims decrement after the
//!   CAS lands, releases increment after the bit clears, so it can lag the
//!   bitset transiently but never underflows (every decrement follows a
//!   won bit, every increment a cleared one; per slot those alternate).

use std::sync::atomic::{AtomicU64, Ordering};

use ivl_sim_core::domain::DomainId;
use ivl_sim_core::obs::StatsRegistry;

use crate::domains::FreeTreeLingList;
use crate::geometry::TreeLingId;

/// One 64-byte line of per-TreeLing metadata. `Box<[MetaLine]>` respects
/// the element alignment, so whole cache lines — not arbitrary offsets
/// into a flat word array — are the unit of sharing between threads.
/// Without this padding, adjacent TreeLings' one-word bitsets and
/// counters land on common lines and threads working disjoint TreeLings
/// still bounce coherence traffic on every claim.
#[repr(align(64))]
#[derive(Debug)]
struct MetaLine([AtomicU64; CELLS_PER_LINE]);

impl MetaLine {
    fn zeroed() -> Self {
        MetaLine(std::array::from_fn(|_| AtomicU64::new(0)))
    }
}

/// Cells (u64 slots) per metadata line.
const CELLS_PER_LINE: usize = 8;
/// Per-TreeLing header cells ahead of the bitset words: the owner/epoch
/// word and the free counter.
const HDR_CELLS: usize = 2;

/// Stripes of the contention counters; a power of two no smaller than
/// the thread counts the storms drive.
const STAT_STRIPES: usize = 16;

/// A cache-line-padded counter cell.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// An add-heavy monotonic counter striped over padded cells: writers add
/// into the stripe of the TreeLing (or domain) they are working, so
/// threads on disjoint shards never bounce a shared counter line;
/// readers sum all stripes.
#[derive(Debug, Default)]
pub struct StripedCounter {
    cells: [PaddedCell; STAT_STRIPES],
}

impl StripedCounter {
    fn add(&self, stripe: usize) {
        self.cells[stripe % STAT_STRIPES]
            .0
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Current total over all stripes.
    pub fn load(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A claimed leaf slot: position plus the ownership epoch it was claimed
/// under. Releasing with a stale epoch is a deterministic no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotHandle {
    /// TreeLing the slot lives in.
    pub treeling: TreeLingId,
    /// Leaf index within the TreeLing (`0..leaf_capacity`).
    pub leaf: u32,
    /// Ownership epoch of the TreeLing at claim time.
    pub epoch: u64,
}

/// Contention/usage counters, all monotonic and thread-safe.
#[derive(Debug, Default)]
pub struct ShardedStats {
    /// Lost bitset-CAS attempts during claims.
    pub cas_retries: StripedCounter,
    /// Allocations served from a non-current TreeLing of the same domain.
    pub shard_steals: StripedCounter,
    /// Releases rejected because the TreeLing changed hands (stale epoch).
    pub stale_rejects: StripedCounter,
    /// Allocation attempts that found no TreeLing available.
    pub starvation: StripedCounter,
    /// Successful slot claims.
    pub claims: StripedCounter,
    /// Successful slot releases.
    pub releases: StripedCounter,
}

/// The concurrent allocator: occupancy bitsets + free counters + owner
/// words per TreeLing, and the shared recycling FIFO.
#[derive(Debug)]
pub struct ShardedForest {
    /// Per-TreeLing metadata, `lines_per_treeling` whole cache lines each:
    /// cell 0 = `epoch << 16 | domain_index + 1` (low half 0 ⇔ unowned),
    /// cell 1 = free-slot counter (scan hint), cells 2.. = leaf-occupancy
    /// bitset words (bit set ⇔ leaf claimed).
    meta: Box<[MetaLine]>,
    lines_per_treeling: usize,
    free_list: FreeTreeLingList,
    stats: ShardedStats,
    treeling_count: u32,
    leaf_capacity: u32,
    words_per_treeling: usize,
    /// Bits of the final (possibly partial) word that map to real leaves.
    last_word_mask: u64,
}

impl ShardedForest {
    /// Creates a forest of `treeling_count` TreeLings with `leaf_capacity`
    /// claimable leaf slots each, all unowned and free.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(treeling_count: u32, leaf_capacity: u32) -> Self {
        assert!(treeling_count > 0, "need at least one TreeLing");
        assert!(leaf_capacity > 0, "need at least one leaf slot");
        let words_per_treeling = leaf_capacity.div_ceil(64) as usize;
        let lines_per_treeling = (HDR_CELLS + words_per_treeling).div_ceil(CELLS_PER_LINE);
        let tail_bits = leaf_capacity % 64;
        let mut meta: Vec<MetaLine> = (0..lines_per_treeling * treeling_count as usize)
            .map(|_| MetaLine::zeroed())
            .collect();
        for t in 0..treeling_count as usize {
            // Cell 1 of each TreeLing's first line: the free counter.
            *meta[t * lines_per_treeling].0[1].get_mut() = leaf_capacity as u64;
        }
        ShardedForest {
            meta: meta.into_boxed_slice(),
            lines_per_treeling,
            free_list: FreeTreeLingList::new(treeling_count),
            stats: ShardedStats::default(),
            treeling_count,
            leaf_capacity,
            words_per_treeling,
            last_word_mask: if tail_bits == 0 {
                u64::MAX
            } else {
                (1u64 << tail_bits) - 1
            },
        }
    }

    fn cell(&self, t: usize, c: usize) -> &AtomicU64 {
        &self.meta[t * self.lines_per_treeling + c / CELLS_PER_LINE].0[c % CELLS_PER_LINE]
    }

    /// `epoch << 16 | domain_index + 1`; low half 0 ⇔ unowned.
    fn owner(&self, t: usize) -> &AtomicU64 {
        self.cell(t, 0)
    }

    fn free_count(&self, t: usize) -> &AtomicU64 {
        self.cell(t, 1)
    }

    fn word(&self, t: usize, wi: usize) -> &AtomicU64 {
        self.cell(t, HDR_CELLS + wi)
    }

    /// TreeLings in the forest.
    pub fn treeling_count(&self) -> u32 {
        self.treeling_count
    }

    /// Claimable leaves per TreeLing.
    pub fn leaf_capacity(&self) -> u32 {
        self.leaf_capacity
    }

    /// Contention/usage counters.
    pub fn stats(&self) -> &ShardedStats {
        &self.stats
    }

    /// TreeLings currently on the recycling FIFO.
    pub fn unassigned(&self) -> usize {
        self.free_list.len()
    }

    fn word_mask(&self, wi: usize) -> u64 {
        if wi + 1 == self.words_per_treeling {
            self.last_word_mask
        } else {
            u64::MAX
        }
    }

    /// Pulls an unassigned TreeLing off the FIFO for `domain`. The caller's
    /// thread owns it exclusively until [`release_treeling`].
    ///
    /// [`release_treeling`]: Self::release_treeling
    pub fn acquire_treeling(&self, domain: DomainId) -> Option<TreeLingId> {
        let Some(tid) = self.free_list.pop() else {
            self.stats.starvation.add(domain.index());
            return None;
        };
        let owner = self.owner(tid.0 as usize);
        // Only the popping thread touches an unowned TreeLing, so a plain
        // store suffices; the epoch half is preserved across owners.
        let epoch = owner.load(Ordering::Acquire) >> 16;
        owner.store(epoch << 16 | (domain.index() as u64 + 1), Ordering::Release);
        Some(tid)
    }

    /// Claims one free leaf in `treeling`. Returns `None` when the TreeLing
    /// is (or transiently looks) full.
    pub fn claim(&self, treeling: TreeLingId) -> Option<SlotHandle> {
        let mut retries = 0u64;
        self.claim_counted(treeling, &mut retries)
    }

    /// [`claim`](Self::claim), additionally accumulating this call's CAS
    /// losses into `retries` — the per-thread contention signal the
    /// timeline's per-worker `forest.w<i>.cas_retries` series is built from
    /// (the striped forest counter only has the cross-thread total).
    pub fn claim_counted(&self, treeling: TreeLingId, retries: &mut u64) -> Option<SlotHandle> {
        let t = treeling.0 as usize;
        if self.free_count(t).load(Ordering::Relaxed) == 0 {
            return None;
        }
        let epoch = self.owner(t).load(Ordering::Acquire) >> 16;
        for wi in 0..self.words_per_treeling {
            let word = self.word(t, wi);
            let mut cur = word.load(Ordering::Relaxed);
            loop {
                let free = !cur & self.word_mask(wi);
                if free == 0 {
                    break; // word full, next word
                }
                let bit = free.trailing_zeros();
                match word.compare_exchange_weak(
                    cur,
                    cur | 1 << bit,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.free_count(t).fetch_sub(1, Ordering::Relaxed);
                        self.stats.claims.add(t);
                        return Some(SlotHandle {
                            treeling,
                            leaf: wi as u32 * 64 + bit,
                            epoch,
                        });
                    }
                    Err(seen) => {
                        self.stats.cas_retries.add(t);
                        *retries += 1;
                        cur = seen;
                    }
                }
            }
        }
        None
    }

    /// Releases a claimed slot. Returns `false` — and changes nothing —
    /// when the handle's epoch is stale (the TreeLing was recycled since),
    /// which is the deterministic anti-aliasing guarantee.
    pub fn release(&self, handle: SlotHandle) -> bool {
        let t = handle.treeling.0 as usize;
        let epoch = self.owner(t).load(Ordering::Acquire) >> 16;
        if epoch != handle.epoch {
            self.stats.stale_rejects.add(t);
            return false;
        }
        let wi = (handle.leaf / 64) as usize;
        let bit = handle.leaf % 64;
        let prev = self.word(t, wi).fetch_and(!(1u64 << bit), Ordering::AcqRel);
        debug_assert!(prev & 1 << bit != 0, "releasing a free slot");
        self.free_count(t).fetch_add(1, Ordering::Relaxed);
        self.stats.releases.add(t);
        true
    }

    /// Returns `treeling` to the FIFO: clears its bitset, refills its free
    /// counter, bumps the ownership epoch (invalidating every outstanding
    /// handle), and enqueues it for the next domain. Must be called by the
    /// owning domain's thread.
    pub fn release_treeling(&self, treeling: TreeLingId) {
        let t = treeling.0 as usize;
        for wi in 0..self.words_per_treeling {
            self.word(t, wi).store(0, Ordering::Release);
        }
        self.free_count(t)
            .store(self.leaf_capacity as u64, Ordering::Release);
        let owner = self.owner(t);
        let epoch = owner.load(Ordering::Acquire) >> 16;
        // Bump the epoch *and* drop the owner in one store: outstanding
        // SlotHandles for the old incarnation turn stale atomically.
        owner.store((epoch + 1) << 16, Ordering::Release);
        self.free_list.push(treeling);
    }

    /// Whether every TreeLing is unowned, fully free, and back on the FIFO
    /// (end-of-storm accounting for the tests).
    pub fn fully_free(&self) -> bool {
        self.free_list.len() == self.treeling_count as usize
            && (0..self.treeling_count as usize).all(|t| {
                self.owner(t).load(Ordering::Acquire) & 0xFFFF == 0
                    && self.free_count(t).load(Ordering::Acquire) == self.leaf_capacity as u64
                    && (0..self.words_per_treeling)
                        .all(|wi| self.word(t, wi).load(Ordering::Acquire) == 0)
            })
    }

    /// Exports the contention counters under `prefix` (the `forest.*`
    /// namespace of the ISSUE's observability satellite).
    pub fn export_stats(&self, prefix: &str, reg: &mut StatsRegistry) {
        let s = &self.stats;
        reg.set_counter(
            &format!("{prefix}.cas_retries"),
            s.cas_retries.load() + self.free_list.cas_retries(),
        );
        reg.set_counter(&format!("{prefix}.shard_steals"), s.shard_steals.load());
        reg.set_counter(&format!("{prefix}.stale_rejects"), s.stale_rejects.load());
        reg.set_counter(&format!("{prefix}.starvation"), s.starvation.load());
        reg.set_counter(&format!("{prefix}.claims"), s.claims.load());
        reg.set_counter(&format!("{prefix}.releases"), s.releases.load());
    }
}

/// Per-domain allocation front over a shared [`ShardedForest`]: owns the
/// domain's TreeLing list and a cursor, mirroring the serial controller's
/// "exhaust the current TreeLing, then grow" policy.
#[derive(Debug)]
pub struct DomainAlloc<'a> {
    forest: &'a ShardedForest,
    domain: DomainId,
    owned: Vec<TreeLingId>,
    /// Index into `owned` of the TreeLing serving allocations.
    cursor: usize,
    /// CAS losses this front has personally suffered (thread-local view of
    /// the forest's striped `cas_retries` total).
    retries: u64,
}

impl<'a> DomainAlloc<'a> {
    /// A fresh, TreeLing-less allocation front for `domain`.
    pub fn new(forest: &'a ShardedForest, domain: DomainId) -> Self {
        DomainAlloc {
            forest,
            domain,
            owned: Vec::new(),
            cursor: 0,
            retries: 0,
        }
    }

    /// TreeLings currently owned, in acquisition order.
    pub fn owned(&self) -> &[TreeLingId] {
        &self.owned
    }

    /// CAS losses this front has suffered across its `alloc` calls.
    pub fn cas_retries(&self) -> u64 {
        self.retries
    }

    /// Claims a leaf slot: current TreeLing first, then the domain's other
    /// TreeLings (a *shard steal*), then a fresh TreeLing from the FIFO.
    /// `None` means TreeLing starvation (counted on the forest).
    pub fn alloc(&mut self) -> Option<SlotHandle> {
        if let Some(&tid) = self.owned.get(self.cursor) {
            if let Some(h) = self.forest.claim_counted(tid, &mut self.retries) {
                return Some(h);
            }
        }
        let mut steal = None;
        for (i, &tid) in self.owned.iter().enumerate() {
            if i == self.cursor {
                continue;
            }
            if let Some(h) = self.forest.claim_counted(tid, &mut self.retries) {
                self.forest.stats.shard_steals.add(self.domain.index());
                steal = Some((h, i));
                break;
            }
        }
        if let Some((h, i)) = steal {
            self.cursor = i;
            return Some(h);
        }
        let tid = self.forest.acquire_treeling(self.domain)?;
        self.owned.push(tid);
        self.cursor = self.owned.len() - 1;
        self.forest.claim_counted(tid, &mut self.retries)
    }

    /// Releases a slot claimed from this forest. Stale handles are
    /// rejected (returns `false`).
    pub fn free(&self, handle: SlotHandle) -> bool {
        self.forest.release(handle)
    }

    /// Destroys the domain: every owned TreeLing goes back to the FIFO
    /// with a bumped epoch. Outstanding handles become stale.
    pub fn destroy(&mut self) {
        for tid in self.owned.drain(..) {
            self.forest.release_treeling(tid);
        }
        self.cursor = 0;
    }
}

impl Drop for DomainAlloc<'_> {
    fn drop(&mut self) {
        self.destroy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u16) -> DomainId {
        DomainId::new_unchecked(i)
    }

    #[test]
    fn claims_fill_a_treeling_then_grow() {
        let f = ShardedForest::new(4, 70); // two words, partial tail
        let mut a = DomainAlloc::new(&f, d(1));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..70 {
            let h = a.alloc().expect("first TreeLing has room");
            assert!(seen.insert((h.treeling, h.leaf)), "no slot handed twice");
        }
        assert_eq!(a.owned().len(), 1);
        let h = a.alloc().expect("second TreeLing");
        assert_eq!(a.owned().len(), 2);
        assert!(h.leaf < 70);
        assert_eq!(f.stats().claims.load(), 71);
    }

    #[test]
    fn release_returns_slots_for_reuse() {
        let f = ShardedForest::new(1, 8);
        let mut a = DomainAlloc::new(&f, d(0));
        let handles: Vec<_> = (0..8).map(|_| a.alloc().unwrap()).collect();
        assert!(a.alloc().is_none(), "full TreeLing, empty FIFO");
        assert!(a.free(handles[3]));
        let h = a.alloc().unwrap();
        assert_eq!(h.leaf, 3, "lowest free bit is reused");
    }

    #[test]
    fn stale_epoch_release_is_rejected() {
        let f = ShardedForest::new(2, 8);
        let mut a = DomainAlloc::new(&f, d(0));
        let h = a.alloc().unwrap();
        a.destroy();
        // The TreeLing recycled into another domain: the old handle must
        // bounce even if the same leaf is claimed again.
        let mut b = DomainAlloc::new(&f, d(1));
        let h2 = b.alloc().unwrap();
        assert!(!f.release(h), "stale handle rejected");
        assert_eq!(f.stats().stale_rejects.load(), 1);
        assert!(f.release(h2), "fresh handle accepted");
    }

    #[test]
    fn starvation_is_counted_not_fatal() {
        let f = ShardedForest::new(1, 4);
        let mut a = DomainAlloc::new(&f, d(0));
        for _ in 0..4 {
            a.alloc().unwrap();
        }
        assert!(a.alloc().is_none());
        assert_eq!(f.stats().starvation.load(), 1);
    }

    #[test]
    fn destroy_restores_full_accounting() {
        let f = ShardedForest::new(3, 100);
        {
            let mut a = DomainAlloc::new(&f, d(0));
            let mut b = DomainAlloc::new(&f, d(1));
            for _ in 0..150 {
                a.alloc().unwrap();
            }
            for _ in 0..40 {
                b.alloc().unwrap();
            }
            a.destroy();
            b.destroy();
        }
        assert!(f.fully_free(), "all TreeLings free and queued");
        assert_eq!(f.unassigned(), 3);
    }

    #[test]
    fn export_stats_lands_in_the_forest_namespace() {
        let f = ShardedForest::new(2, 8);
        let mut a = DomainAlloc::new(&f, d(0));
        let h = a.alloc().unwrap();
        a.free(h);
        let mut reg = StatsRegistry::new();
        f.export_stats("forest", &mut reg);
        assert_eq!(reg.counter("forest.claims"), Some(1));
        assert_eq!(reg.counter("forest.releases"), Some(1));
        assert_eq!(reg.counter("forest.cas_retries"), Some(0));
        assert_eq!(reg.counter("forest.shard_steals"), Some(0));
    }
}
