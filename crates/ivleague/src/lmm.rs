//! Leaf Mapping Metadata (LMM): the page-table-embedded page→slot mapping
//! and its on-chip cache (paper §VI-C2, Figure 9).
//!
//! IvLeague extends each page-table entry with a 64-bit leaf ID naming the
//! TreeLing slot that verifies the page. The extension halves PTE density
//! (256 instead of 512 entries per 4 KiB page-table page). The memory
//! controller keeps an **LMM cache** (Table I: 8 Ki entries, 16-way) so the
//! common case needs no page-table access; a miss costs one memory read of
//! the PTE block.
//!
//! The authoritative page→slot map itself lives in
//! [`crate::forest::Forest`]; this module provides the cache and the PTE
//! address arithmetic for the timing model.

use ivl_cache::set_assoc::SetAssocCache;
use ivl_cache::CacheModel;
use ivl_sim_core::addr::{BlockAddr, PageNum};
use ivl_sim_core::stats::HitMiss;

/// Extended-PTE entries per 64 B memory block: a 16-byte PTE (8 B PTE +
/// 8 B leaf ID) packs four to a block.
pub const EXT_PTES_PER_BLOCK: u64 = 4;

/// Extended-PTE entries per 4 KiB page-table page (Figure 9b).
pub const EXT_PTES_PER_PT_PAGE: u64 = 256;

/// Computes the memory block holding the extended PTE (and hence the LMM
/// field) of `page`, given the page-table region base block.
///
/// # Examples
///
/// ```
/// use ivleague::lmm::{pte_block, EXT_PTES_PER_BLOCK};
/// use ivl_sim_core::addr::PageNum;
/// let base = 1_000_000;
/// assert_eq!(pte_block(base, PageNum::new(0)).index(), base);
/// assert_eq!(pte_block(base, PageNum::new(4)).index(), base + 1);
/// ```
pub fn pte_block(pt_base_block: u64, page: PageNum) -> BlockAddr {
    BlockAddr::new(pt_base_block + page.index() / EXT_PTES_PER_BLOCK)
}

/// The on-chip LMM cache: caches leaf IDs by page frame number.
///
/// # Examples
///
/// ```
/// use ivleague::lmm::LmmCache;
/// use ivl_sim_core::addr::PageNum;
/// let mut c = LmmCache::new(8192, 16);
/// assert!(!c.access(PageNum::new(7)));
/// assert!(c.access(PageNum::new(7)));
/// ```
#[derive(Debug)]
pub struct LmmCache {
    cache: SetAssocCache,
    stats: HitMiss,
}

impl LmmCache {
    /// Creates a cache with `entries` total entries and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not form a power-of-two set count.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(
            entries.is_multiple_of(ways),
            "entries must divide into ways"
        );
        LmmCache {
            cache: SetAssocCache::new(entries / ways, ways),
            stats: HitMiss::new(),
        }
    }

    /// Looks up `page`, filling on a miss. Returns whether it hit.
    pub fn access(&mut self, page: PageNum) -> bool {
        let out = self.cache.access(page.index(), false);
        self.stats.record(out.hit);
        out.hit
    }

    /// Invalidates `page`'s entry (TLB shootdown / page remap / migration:
    /// the paper evicts LMM entries together with TLB entries to keep them
    /// consistent).
    pub fn invalidate(&mut self, page: PageNum) {
        self.cache.invalidate(page.index());
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pte_blocks_pack_four_ptes() {
        let base = 500;
        assert_eq!(
            pte_block(base, PageNum::new(0)),
            pte_block(base, PageNum::new(3))
        );
        assert_ne!(
            pte_block(base, PageNum::new(3)),
            pte_block(base, PageNum::new(4))
        );
    }

    #[test]
    fn cache_hits_after_fill() {
        let mut c = LmmCache::new(64, 16);
        assert!(!c.access(PageNum::new(1)));
        assert!(c.access(PageNum::new(1)));
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn invalidation_forces_miss() {
        let mut c = LmmCache::new(64, 16);
        c.access(PageNum::new(9));
        c.invalidate(PageNum::new(9));
        assert!(!c.access(PageNum::new(9)));
    }

    #[test]
    fn capacity_bounds_residency() {
        let mut c = LmmCache::new(32, 16);
        for p in 0..1000 {
            c.access(PageNum::new(p));
        }
        let hits: usize = (0..1000).filter(|&p| c.access(PageNum::new(p))).count();
        assert!(hits <= 32 + 1, "more hits ({hits}) than capacity");
    }
}
