//! Property tests on TreeLing geometry arithmetic.

use ivl_testkit::prelude::*;
use ivleague::geometry::{TlNode, TreeLingGeometry, TreeLingId, TreeLingLayout};

props! {
    #[test]
    fn offset_round_trip(arity in 2u32..9, levels in 1u32..6, seed in any::<u32>()) {
        let g = TreeLingGeometry::new(arity, levels);
        let offset = seed % g.nodes_per_treeling();
        let node = g.node_from_offset(offset);
        prop_assert_eq!(g.node_offset(node), offset);
    }

    #[test]
    fn parent_child_consistency(arity in 2u32..9, levels in 2u32..6, seed in any::<u32>()) {
        let g = TreeLingGeometry::new(arity, levels);
        // Pick a non-root node.
        let below_root: u32 = (1..levels).map(|l| g.nodes_at_level(l)).sum();
        let node = g.node_from_offset(1 + seed % below_root);
        prop_assert!(node.level < levels);
        let parent = g.parent(node).expect("non-root has a parent");
        let slot = g.slot_in_parent(node);
        prop_assert_eq!(g.child(parent, slot), Some(node));
        prop_assert!((slot as u32) < arity);
    }

    #[test]
    fn node_addresses_never_collide(
        arity in 2u32..9,
        levels in 1u32..5,
        t1 in 0u32..16,
        t2 in 0u32..16,
        o1 in any::<u32>(),
        o2 in any::<u32>(),
    ) {
        let g = TreeLingGeometry::new(arity, levels);
        let layout = TreeLingLayout::new(g, 16, 10_000);
        let n1 = g.node_from_offset(o1 % g.nodes_per_treeling());
        let n2 = g.node_from_offset(o2 % g.nodes_per_treeling());
        let a1 = layout.node_block(TreeLingId(t1), n1);
        let a2 = layout.node_block(TreeLingId(t2), n2);
        prop_assert_eq!(a1 == a2, t1 == t2 && n1 == n2);
    }

    #[test]
    fn coverage_is_arity_pow_levels(arity in 2u32..9, levels in 1u32..6) {
        let g = TreeLingGeometry::new(arity, levels);
        prop_assert_eq!(g.leaf_capacity(), (arity as u64).pow(levels));
        let sum: u32 = (1..=levels).map(|l| g.nodes_at_level(l)).sum();
        prop_assert_eq!(sum, g.nodes_per_treeling());
    }
}

#[test]
fn upper_structure_disjoint_from_treeling_nodes() {
    let g = TreeLingGeometry::new(8, 4);
    let layout = TreeLingLayout::new(g, 64, 0);
    let max_tl_block = layout.node_block(
        TreeLingId(63),
        TlNode {
            level: 1,
            index: g.nodes_at_level(1) - 1,
        },
    );
    for b in layout.upper_structure_blocks() {
        assert!(b.index() > max_tl_block.index());
    }
}
