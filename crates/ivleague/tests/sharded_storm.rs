//! Concurrency storms over the sharded forest allocator.
//!
//! The property these tests pin is **no stale TreeLing aliasing across
//! domain-ID recycling**: once a domain destroys itself, its TreeLings go
//! back through the lock-free FIFO to other (possibly reused) domain IDs,
//! and no handle from the old incarnation may ever touch the new owner's
//! slots. The multi-threaded storm drives claims through a scoreboard of
//! per-slot atomic owner tags, so any aliasing — a FIFO double-hand-out,
//! a claim race, a stale release slipping the epoch check — trips an
//! assertion on the spot instead of silently corrupting accounting.

use std::sync::atomic::{AtomicU64, Ordering};

use ivl_sim_core::domain::DomainId;
use ivl_testkit::prelude::*;
use ivleague::sharded::{DomainAlloc, ShardedForest, SlotHandle};

/// Per-slot ownership scoreboard: `0` free, else `thread id + 1`. Claims
/// and frees swap their tag in and out, so overlapping ownership of one
/// slot by two threads (under live epochs) is detected immediately.
struct Scoreboard {
    tags: Vec<AtomicU64>,
    leaf_capacity: u32,
}

impl Scoreboard {
    fn new(forest: &ShardedForest) -> Self {
        let slots = forest.treeling_count() as usize * forest.leaf_capacity() as usize;
        Scoreboard {
            tags: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            leaf_capacity: forest.leaf_capacity(),
        }
    }

    fn slot(&self, h: &SlotHandle) -> &AtomicU64 {
        &self.tags[h.treeling.0 as usize * self.leaf_capacity as usize + h.leaf as usize]
    }

    fn claim(&self, h: &SlotHandle, tid: u64) {
        let prev = self.slot(h).swap(tid + 1, Ordering::AcqRel);
        assert_eq!(
            prev, 0,
            "slot {h:?} claimed by thread {tid} was already owned by tag {prev}: \
             two live claims aliased one leaf"
        );
    }

    fn release(&self, h: &SlotHandle, tid: u64) {
        let prev = self.slot(h).swap(0, Ordering::AcqRel);
        assert_eq!(
            prev,
            tid + 1,
            "thread {tid} released slot {h:?} it did not own (tag {prev}): \
             ownership leaked across recycling"
        );
    }
}

/// Tiny deterministic PRNG so each thread's storm is reproducible.
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Eight threads alloc/free/destroy against one forest, recycling
/// TreeLings through the FIFO between reused domain IDs the whole time.
#[test]
fn concurrent_storm_never_aliases_recycled_treelings() {
    const THREADS: u64 = 8;
    const ROUNDS: usize = 60;
    const OPS_PER_ROUND: usize = 400;

    let forest = ShardedForest::new(24, 70);
    let scoreboard = Scoreboard::new(&forest);

    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let forest = &forest;
            let scoreboard = &scoreboard;
            s.spawn(move || {
                let mut rng = 0x5EED ^ (tid << 8);
                // Domain IDs deliberately collide across threads (tid % 4):
                // recycling must be safe even when a *different thread*
                // reuses the same domain ID.
                let domain = DomainId::new_unchecked((tid % 4) as u16 + 1);
                let mut stale: Vec<SlotHandle> = Vec::new();
                for _round in 0..ROUNDS {
                    let mut alloc = DomainAlloc::new(forest, domain);
                    let mut held: Vec<SlotHandle> = Vec::new();
                    for _op in 0..OPS_PER_ROUND {
                        match next_rand(&mut rng) % 3 {
                            0 | 1 => {
                                // Starvation under contention is legal
                                // (counted, not fatal) — just move on.
                                if let Some(h) = alloc.alloc() {
                                    scoreboard.claim(&h, tid);
                                    held.push(h);
                                }
                            }
                            _ => {
                                if !held.is_empty() {
                                    let i = next_rand(&mut rng) as usize % held.len();
                                    let h = held.swap_remove(i);
                                    scoreboard.release(&h, tid);
                                    assert!(alloc.free(h), "live-epoch release rejected for {h:?}");
                                }
                            }
                        }
                    }
                    // Hand everything back and recycle the TreeLings: the
                    // still-held handles turn stale by the epoch bump.
                    for h in &held {
                        scoreboard.release(h, tid);
                    }
                    stale.append(&mut held);
                    alloc.destroy();
                    // Stale handles from any earlier incarnation must be
                    // rejected without touching the new owner's state.
                    for _ in 0..4 {
                        if stale.is_empty() {
                            break;
                        }
                        let i = next_rand(&mut rng) as usize % stale.len();
                        let h = stale.swap_remove(i);
                        assert!(
                            !forest.release(h),
                            "stale handle {h:?} was accepted after its TreeLing \
                             was recycled"
                        );
                    }
                }
            });
        }
    });

    assert!(
        forest.fully_free(),
        "storm left the forest unbalanced: {:?}",
        forest.stats()
    );
    let claims = forest.stats().claims.load();
    assert!(claims > 0, "storm never claimed anything");
    // Every stale replay above must have been rejected, never absorbed.
    let stale_rejects = forest.stats().stale_rejects.load();
    assert!(stale_rejects > 0, "storm never exercised the epoch guard");
}

/// A destroyed domain's handles stay dead even while another thread is
/// actively reusing the recycled TreeLing.
#[test]
fn stale_handles_stay_dead_while_new_owner_runs() {
    let forest = ShardedForest::new(1, 64);
    let d1 = DomainId::new_unchecked(1);
    let d2 = DomainId::new_unchecked(2);

    let mut first = DomainAlloc::new(&forest, d1);
    let stale: Vec<SlotHandle> = (0..8)
        .map(|_| first.alloc().expect("empty forest"))
        .collect();
    first.destroy();

    let mut second = DomainAlloc::new(&forest, d2);
    let live = second.alloc().expect("recycled TreeLing must be claimable");
    std::thread::scope(|s| {
        let forest = &forest;
        let stale_ref = &stale;
        s.spawn(move || {
            for h in stale_ref {
                assert!(!forest.release(*h), "stale {h:?} accepted");
            }
        });
        // Main thread keeps the new incarnation busy concurrently.
        for _ in 0..32 {
            if let Some(h) = second.alloc() {
                assert!(second.free(h));
            }
        }
    });
    assert!(second.free(live));
    second.destroy();
    assert!(forest.fully_free());
    assert_eq!(forest.stats().stale_rejects.load(), 8);
}

props! {
    /// Single-threaded oracle: the sharded forest against a naive set
    /// model over a random op tape. Claims must hand out exactly the
    /// slots the model says are free; counters must reconcile at the end.
    #[test]
    fn matches_a_set_model_single_threaded(
        seed in any::<u64>(),
        treelings in 1u32..6,
        leaves in 1u32..130,
        ops in 1usize..400,
    ) {
        let forest = ShardedForest::new(treelings, leaves);
        let domain = DomainId::new_unchecked(1);
        let mut alloc = DomainAlloc::new(&forest, domain);
        let mut model: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut held: Vec<SlotHandle> = Vec::new();
        let mut rng = seed | 1;
        for _ in 0..ops {
            if next_rand(&mut rng).is_multiple_of(2) {
                match alloc.alloc() {
                    Some(h) => {
                        prop_assert!(h.leaf < leaves);
                        prop_assert!(
                            model.insert((h.treeling.0, h.leaf)),
                            "claim returned an occupied slot"
                        );
                        held.push(h);
                    }
                    None => {
                        // Single-threaded: starvation can only be real
                        // exhaustion of the whole forest.
                        prop_assert_eq!(
                            model.len() as u64,
                            treelings as u64 * leaves as u64
                        );
                    }
                }
            } else if !held.is_empty() {
                let i = next_rand(&mut rng) as usize % held.len();
                let h = held.swap_remove(i);
                prop_assert!(model.remove(&(h.treeling.0, h.leaf)));
                prop_assert!(alloc.free(h));
            }
        }
        let stats = forest.stats();
        prop_assert_eq!(
            stats.claims.load() - stats.releases.load(),
            model.len() as u64
        );
        alloc.destroy();
        prop_assert!(forest.fully_free());
    }
}
