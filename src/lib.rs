//! Umbrella crate for the IvLeague reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests (and downstream users who want the whole stack) can
//! depend on a single package:
//!
//! * [`core`](ivl_sim_core) — addresses, domains, configuration, RNG, stats;
//! * [`crypto`](ivl_crypto) — AES-128, SipHash-2-4, counter-mode, MACs;
//! * [`cache`](ivl_cache) — set-associative / randomized caches, CAM buffers;
//! * [`dram`](ivl_dram) — DRAM timing model;
//! * [`secure_mem`](ivl_secure_mem) — counters, MACs, Bonsai Merkle Tree,
//!   the functional secure memory and the Baseline timing scheme;
//! * [`ivleague`] — TreeLings, NFL, LMM, domain controller, the forest and
//!   the IvLeague-Basic/-Invert/-Pro timing schemes;
//! * [`simulator`](ivl_simulator) — the trace-driven multicore system;
//! * [`workloads`](ivl_workloads) — benchmark models and Table II mixes;
//! * [`attack`](ivl_attack) — the metadata side-channel attack;
//! * [`analysis`](ivl_analysis) — starvation/scalability/cost models.
//!
//! # Examples
//!
//! ```
//! use ivleague_repro::ivl_secure_mem::functional::SecureMemory;
//! use ivleague_repro::ivl_sim_core::addr::BlockAddr;
//!
//! let mut mem = SecureMemory::new(64, [1u8; 16], [2u8; 16], [3u8; 16]);
//! mem.write_block(BlockAddr::new(0), &[42u8; 64])?;
//! assert_eq!(mem.read_block(BlockAddr::new(0))?, [42u8; 64]);
//! # Ok::<(), ivleague_repro::ivl_secure_mem::functional::IntegrityError>(())
//! ```

pub use ivl_analysis;
pub use ivl_attack;
pub use ivl_cache;
pub use ivl_crypto;
pub use ivl_dram;
pub use ivl_secure_mem;
pub use ivl_sim_core;
pub use ivl_simulator;
pub use ivl_workloads;
pub use ivleague;
